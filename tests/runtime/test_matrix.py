"""Unit and property tests for MatrixBlock."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.errors import ShapeError
from repro.runtime.matrix import MatrixBlock


class TestConstruction:
    def test_from_2d_array(self):
        block = MatrixBlock(np.arange(6.0).reshape(2, 3))
        assert block.shape == (2, 3)
        assert not block.is_sparse
        assert block.nnz == 5  # the zero cell is not counted

    def test_from_1d_array_becomes_column(self):
        block = MatrixBlock(np.array([1.0, 2.0, 3.0]))
        assert block.shape == (3, 1)

    def test_from_scalar_array(self):
        block = MatrixBlock(np.array(5.0))
        assert block.shape == (1, 1)
        assert block.as_scalar() == 5.0

    def test_from_list(self):
        block = MatrixBlock([[1.0, 2.0], [3.0, 4.0]])
        assert block.shape == (2, 2)

    def test_from_scipy(self):
        csr = sp.random(10, 10, density=0.3, format="csr", random_state=1)
        block = MatrixBlock(csr)
        assert block.is_sparse
        assert block.shape == (10, 10)

    def test_3d_rejected(self):
        with pytest.raises(ShapeError):
            MatrixBlock(np.zeros((2, 2, 2)))

    def test_copy_constructor_shares_storage(self):
        a = MatrixBlock(np.ones((3, 3)))
        b = MatrixBlock(a)
        assert b.to_dense() is a.to_dense()

    def test_zeros(self):
        dense = MatrixBlock.zeros(4, 5)
        assert dense.shape == (4, 5) and dense.nnz == 0
        sparse = MatrixBlock.zeros(4, 5, sparse=True)
        assert sparse.is_sparse and sparse.nnz == 0


class TestRand:
    def test_dense_rand_range(self):
        block = MatrixBlock.rand(50, 20, seed=1, low=2.0, high=3.0)
        arr = block.to_dense()
        assert arr.min() >= 2.0 and arr.max() < 3.0

    def test_sparse_rand_sparsity(self):
        block = MatrixBlock.rand(200, 100, sparsity=0.05, seed=2)
        assert block.is_sparse
        assert abs(block.sparsity - 0.05) < 0.02

    def test_rand_deterministic(self):
        a = MatrixBlock.rand(10, 10, seed=42)
        b = MatrixBlock.rand(10, 10, seed=42)
        assert a.allclose(b)

    def test_sparse_rand_symmetric_range_stays_in_range(self):
        # Regression: the explicit-zero replacement used to inject 1.0
        # (outside [low, high)) whenever the midpoint was 0.0.
        for seed in range(8):
            block = MatrixBlock.rand(
                200, 50, sparsity=0.1, low=-0.5, high=0.5, seed=seed
            )
            data = block.to_csr().data
            assert data.size == 0 or (
                data.min() >= -0.5 and data.max() < 0.5
            )
            assert not np.any(data == 0.0)

    def test_sparse_rand_nnz_contract(self):
        # The requested sparsity fixes the stored-value count exactly;
        # no stored value may be an explicit zero.
        block = MatrixBlock.rand(
            100, 40, sparsity=0.2, low=-1.0, high=3.0, seed=3
        )
        csr = block.to_csr()
        assert csr.nnz == round(0.2 * 100 * 40)
        assert block.nnz == csr.nnz  # no explicit zeros among stored
        assert csr.data.min() >= -1.0 and csr.data.max() < 3.0


class TestRepresentation:
    def test_examine_densifies_dense_content(self):
        csr = sp.csr_matrix(np.ones((5, 5)))
        block = MatrixBlock(csr)
        block.examine_representation()
        assert not block.is_sparse

    def test_examine_sparsifies_sparse_content(self):
        arr = np.zeros((100, 100))
        arr[0, 0] = 1.0
        block = MatrixBlock(arr)
        block.examine_representation()
        assert block.is_sparse

    def test_roundtrip_preserves_values(self):
        arr = np.zeros((50, 50))
        arr[:5, :5] = 3.0
        block = MatrixBlock(arr).examine_representation()
        np.testing.assert_array_equal(block.to_dense(), arr)

    def test_size_bytes_sparse_smaller(self):
        arr = np.zeros((100, 100))
        arr[0, :3] = 1.0
        dense = MatrixBlock(arr)
        sparse = MatrixBlock(arr).examine_representation()
        assert sparse.size_bytes < dense.size_bytes


class TestAccess:
    def test_get(self):
        block = MatrixBlock(np.arange(12.0).reshape(3, 4))
        assert block.get(1, 2) == 6.0

    def test_get_sparse(self):
        block = MatrixBlock.rand(20, 20, sparsity=0.1, seed=3)
        dense = block.to_dense()
        assert block.get(4, 7) == dense[4, 7]

    def test_row(self):
        block = MatrixBlock(np.arange(6.0).reshape(2, 3))
        np.testing.assert_array_equal(block.row(1), [3.0, 4.0, 5.0])

    def test_as_scalar_rejects_matrix(self):
        with pytest.raises(ShapeError):
            MatrixBlock(np.ones((2, 2))).as_scalar()

    def test_is_vector(self):
        assert MatrixBlock(np.ones((5, 1))).is_vector()
        assert MatrixBlock(np.ones((1, 5))).is_vector()
        assert not MatrixBlock(np.ones((2, 5))).is_vector()


@given(
    rows=st.integers(1, 30),
    cols=st.integers(1, 30),
    sparsity=st.floats(0.0, 1.0),
)
@settings(max_examples=40, deadline=None)
def test_rand_nnz_matches_sparsity(rows, cols, sparsity):
    block = MatrixBlock.rand(rows, cols, sparsity=sparsity, seed=11)
    assert 0 <= block.nnz <= rows * cols
    assert block.shape == (rows, cols)


@given(st.integers(1, 20), st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_dense_sparse_roundtrip(rows, cols):
    rng = np.random.default_rng(rows * 31 + cols)
    arr = rng.random((rows, cols)) * (rng.random((rows, cols)) > 0.5)
    block = MatrixBlock(arr)
    via_sparse = MatrixBlock(block.to_csr())
    np.testing.assert_allclose(via_sparse.to_dense(), arr)
