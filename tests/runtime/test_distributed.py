"""Simulated distributed backend: correctness and cost accounting."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.runtime.distributed import BlockedMatrix
from repro.runtime.matrix import MatrixBlock
from repro.runtime.skeletons import partition_bounds as _partition_bounds


def _cluster_config(budget=1e5, **cluster_kwargs) -> CodegenConfig:
    return CodegenConfig(
        cluster=ClusterConfig(**cluster_kwargs), local_mem_budget=budget
    )


class TestBlockedMatrix:
    def test_partition_bounds_cover_rows(self):
        bounds = _partition_bounds(100, 6)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        covered = sum(hi - lo for lo, hi in bounds)
        assert covered == 100

    def test_partition_roundtrip_dense(self, rng):
        block = MatrixBlock(rng.random((50, 7)))
        blocked = BlockedMatrix.partition(block, 4)
        assert len(blocked.blocks) == 4
        np.testing.assert_allclose(blocked.collect().to_dense(), block.to_dense())

    def test_partition_roundtrip_sparse(self):
        block = MatrixBlock.rand(60, 10, sparsity=0.1, seed=4)
        blocked = BlockedMatrix.partition(block, 5)
        np.testing.assert_allclose(blocked.collect().to_dense(), block.to_dense())

    def test_more_partitions_than_rows(self, rng):
        block = MatrixBlock(rng.random((3, 2)))
        blocked = BlockedMatrix.partition(block, 8)
        assert len(blocked.blocks) == 3

    @pytest.mark.parametrize("n_partitions", [1, 3, 16])
    @pytest.mark.parametrize("representation", ["dense", "sparse"])
    def test_collect_roundtrips_exactly(self, rng, n_partitions, representation):
        if representation == "dense":
            block = MatrixBlock(rng.random((41, 6)))
        else:
            block = MatrixBlock.rand(41, 6, sparsity=0.15, seed=7)
        blocked = BlockedMatrix.partition(block, n_partitions)
        collected = blocked.collect()
        assert collected.shape == block.shape
        assert collected.is_sparse == block.is_sparse
        np.testing.assert_array_equal(
            collected.to_dense(), block.to_dense()
        )

    @pytest.mark.parametrize("sparse", [False, True])
    def test_collect_empty_matrix(self, sparse):
        block = MatrixBlock.zeros(0, 5, sparse=sparse)
        blocked = BlockedMatrix.partition(block, 4)
        assert blocked.blocks == []
        collected = blocked.collect()
        assert collected.shape == (0, 5)

    def test_collect_mixed_representations(self, rng):
        dense_part = MatrixBlock(rng.random((10, 4)))
        sparse_part = MatrixBlock.rand(10, 4, sparsity=0.1, seed=2)
        blocked = BlockedMatrix([dense_part, sparse_part], 20, 4)
        expected = np.vstack(
            [dense_part.to_dense(), sparse_part.to_dense()]
        )
        np.testing.assert_array_equal(
            blocked.collect().to_dense(), expected
        )

    def test_bounds_track_partitions(self, rng):
        blocked = BlockedMatrix.partition(MatrixBlock(rng.random((50, 3))), 4)
        assert blocked.bounds[0][0] == 0
        assert blocked.bounds[-1][1] == 50
        for (lo, hi), block in zip(blocked.bounds, blocked.blocks):
            assert hi - lo == block.rows


class TestDistributedExecution:
    def test_results_identical_to_local(self, rng):
        data = rng.random((5000, 20))  # 800 KB > 100 KB budget
        v = rng.random((20, 1))

        def build():
            x = api.matrix(data, "X")
            return [x.T @ (x @ api.matrix(v, "v")), (x * 2.0 + 1.0).sum()]

        local = api.eval_all(build(), engine=Engine(mode="base"))
        for mode in ("base", "gen", "gen-fa"):
            engine = Engine(mode=mode, config=_cluster_config())
            dist = api.eval_all(build(), engine=engine)
            np.testing.assert_allclose(
                dist[0].to_dense(), local[0].to_dense(), rtol=1e-9
            )
            assert dist[1] == pytest.approx(local[1])
            assert engine.stats.n_distributed_ops > 0

    def test_small_ops_stay_local(self, rng):
        data = rng.random((10, 4))  # tiny: below budget
        engine = Engine(mode="base", config=_cluster_config())
        api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        assert engine.stats.n_distributed_ops == 0

    def test_broadcast_charged_for_side_inputs(self, rng):
        data = rng.random((5000, 20))
        v = rng.random((5000, 1))
        engine = Engine(mode="base", config=_cluster_config())
        api.eval(
            (api.matrix(data, "X") * api.matrix(v, "v")).sum(), engine=engine
        )
        assert engine.stats.sim_broadcast_bytes > 0
        assert engine.stats.sim_seconds > 0

    def test_rdd_cache_avoids_rereads(self, rng):
        data = rng.random((5000, 20))

        def build(x):
            return [(x * 2.0).sum(), (x * 3.0).sum(), (x + 1.0).sum()]

        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        first = api.eval_all(build(x), engine=engine)
        cost_three_reads = engine.stats.sim_seconds
        engine2 = Engine(mode="base", config=_cluster_config())
        api.eval_all(build(api.matrix(data, "X"))[:1], engine=engine2)
        cost_one_read = engine2.stats.sim_seconds
        # Three cached re-reads must cost far less than three cold reads.
        assert cost_three_reads < 2.5 * cost_one_read

    def test_broadcast_pressure_evicts_cache(self, rng):
        data = rng.random((5000, 20))
        side = rng.random((5000, 1))
        config = _cluster_config(executor_mem=2e5)  # tiny aggregate memory

        def build():
            x = api.matrix(data, "X")
            s = api.matrix(side, "s")
            return [((x * s) + s).sum()]

        engine = Engine(mode="base", config=config)
        api.eval_all(build() * 1, engine=engine)
        large_mem = Engine(mode="base", config=_cluster_config())
        api.eval_all(build(), engine=large_mem)
        assert engine.stats.sim_seconds >= large_mem.stats.sim_seconds

    def test_distributed_spoof_operator(self, rng):
        data = rng.random((5000, 30))
        engine = Engine(mode="gen", config=_cluster_config())
        x = api.matrix(data, "X")
        result = api.eval((x * x * 2.0).sum(), engine=engine)
        assert result == pytest.approx(float((data * data * 2.0).sum()))
        assert engine.stats.n_distributed_ops >= 1

    def test_exec_type_selection(self, rng):
        from repro.hops.types import ExecType

        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        expr = (x * 2.0).sum()
        engine.execute([expr.hop])
        # The cell op over X exceeds the budget.
        assert any(
            h.exec_type is ExecType.SPARK
            for h in [expr.hop] + expr.hop.inputs
            if h.is_matrix or h.inputs
        )


class TestBlockedDataflow:
    """Distributed intermediates stay partitioned across instructions."""

    def test_chained_spark_instructions_stay_blocked(self, rng):
        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        expr = ((x * 2.0) + 1.0).row_sums()
        program = engine.compile([expr.hop])
        opcodes = [i.opcode for i in program.instructions]
        # Exactly one collect: at the program root, not between the
        # three chained SPARK instructions.
        assert opcodes.count("collect") == 1
        assert opcodes[-1] == "collect"
        (result,) = engine.executor.run(program)
        np.testing.assert_allclose(
            result.to_dense(),
            (data * 2.0 + 1.0).sum(axis=1, keepdims=True),
        )
        stats = engine.stats
        # X partitioned once; both downstream instructions consumed the
        # partitioned value directly (partition identity preserved).
        assert stats.n_partitioned == 1
        assert stats.n_blocked_passthrough == 2
        assert stats.n_collects == 1

    def test_collect_inserted_at_exec_type_boundary(self, rng):
        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        # row_sums is SPARK (reads X), the final sum over the 5000x1
        # vector fits the driver budget -> CP consumer needs a collect.
        expr = (x * 2.0).row_sums().sum()
        program = engine.compile([expr.hop])
        collects = [i for i in program.instructions if i.opcode == "collect"]
        assert len(collects) == 1
        (result,) = engine.executor.run(program)
        assert result == pytest.approx(float((data * 2.0).sum()))
        assert engine.stats.n_collects == 1

    def test_full_agg_uses_tree_reduce(self, rng):
        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        result = api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        assert result == pytest.approx(float((data * 2.0).sum()))
        assert engine.stats.n_tree_reduces >= 1

    @pytest.mark.parametrize(
        "build, expected",
        [
            (lambda x: x.mean(), lambda a: a.mean()),
            (lambda x: x.col_sums(), lambda a: a.sum(axis=0, keepdims=True)),
            (lambda x: x.col_mins(), lambda a: a.min(axis=0, keepdims=True)),
            (lambda x: x.max(), lambda a: a.max()),
        ],
    )
    def test_reduce_aggregations_match_local(self, rng, build, expected):
        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        result = api.eval(build(api.matrix(data, "X")), engine=engine)
        want = expected(data)
        if isinstance(result, MatrixBlock):
            np.testing.assert_allclose(result.to_dense(), want, rtol=1e-12)
        else:
            assert result == pytest.approx(float(want))
        assert engine.stats.n_distributed_ops >= 1

    def test_blocked_spoof_chain(self, rng):
        """Generated operators consume and produce blocked values."""
        data = rng.random((5000, 30))
        engine = Engine(mode="gen", config=_cluster_config())
        x = api.matrix(data, "X")
        result = api.eval(
            ((x * 2.0 + 1.0) * (x - 0.5)).row_sums(), engine=engine
        )
        np.testing.assert_allclose(
            result.to_dense(),
            ((data * 2.0 + 1.0) * (data - 0.5)).sum(axis=1, keepdims=True),
            rtol=1e-9,
        )
        assert engine.stats.n_collects >= 1


class TestLineageCache:
    """The RDD cache keys by lineage, never by value identity."""

    def _run_workload(self):
        """Multi-statement program over eagerly freed intermediates:
        fresh blocks are allocated per statement, so an id()-keyed
        cache would produce nondeterministic hits on reused addresses."""
        engine = Engine(mode="base", config=_cluster_config())
        rng = np.random.default_rng(11)
        for _ in range(6):
            data = rng.random((5000, 20))
            x = api.matrix(data, "X")
            api.eval_all(
                [((x * 2.0) + 1.0).sum(), (x * 3.0).row_sums().sum()],
                engine=engine,
            )
        return engine.stats.sim_seconds

    def test_sim_seconds_deterministic_across_engines(self):
        # Regression: with id()-keyed caching, eager freeing plus
        # CPython address reuse produced spurious cache hits and
        # run-dependent sim_seconds.
        first = self._run_workload()
        second = self._run_workload()
        assert first == second

    def test_input_cache_hits_across_programs(self, rng):
        data = rng.random((5000, 20))
        x_block = MatrixBlock(data)
        engine = Engine(mode="base", config=_cluster_config())
        api.eval((api.matrix(x_block, "X") * 2.0).sum(), engine=engine)
        assert engine.stats.n_rdd_cache_hits == 0
        # Second program re-binds the same input block: cached read.
        api.eval((api.matrix(x_block, "X") * 3.0).sum(), engine=engine)
        assert engine.stats.n_rdd_cache_hits >= 1

    def test_identity_guard_rejects_aliased_block(self, rng):
        from repro.config import ClusterConfig
        from repro.runtime.distributed import SparkExecutor
        from repro.runtime.stats import RuntimeStats

        stats = RuntimeStats()
        spark = SparkExecutor(ClusterConfig(), CodegenConfig(), stats)
        block = MatrixBlock(rng.random((10, 10)))
        key = ("data", 12345)
        spark._cache_put(key, block.size_bytes, value=block)
        assert spark._is_cached(key, block)
        # A different object under the same identity key (the aliasing
        # scenario: freed block, reused address) must MISS and evict.
        impostor = MatrixBlock(rng.random((10, 10)))
        assert not spark._is_cached(key, impostor)
        assert key not in spark._cache

    def test_dead_lineages_do_not_starve_live_inputs(self, rng):
        # Regression: dead per-program entries used to pin the modeled
        # aggregate memory until _cache_put rejected every new entry,
        # silently disabling the cache for long-running engines.
        config = CodegenConfig(
            cluster=ClusterConfig(executor_mem=2e6), local_mem_budget=1e5
        )
        engine = Engine(mode="base", config=config)
        for _ in range(12):  # throwaway inputs saturate aggregate_mem
            throwaway = rng.random((5000, 20))
            api.eval((api.matrix(throwaway, "T") * 2.0).sum(), engine=engine)
        hot = MatrixBlock(rng.random((5000, 20)))
        before = engine.stats.n_rdd_cache_hits
        for _ in range(5):
            api.eval((api.matrix(hot, "X") * 2.0).sum(), engine=engine)
        assert engine.stats.n_rdd_cache_hits - before >= 4

    def test_broadcast_pressure_eviction_is_counted(self, rng):
        data = rng.random((5000, 20))
        side = rng.random((5000, 1))
        config = _cluster_config(executor_mem=2e5)  # tiny aggregate memory
        engine = Engine(mode="base", config=config)
        x = api.matrix(data, "X")
        s = api.matrix(side, "s")
        api.eval(((x * s) + s).sum(), engine=engine)
        assert engine.stats.n_rdd_cache_evictions >= 1


SPARK_ALGO_MODES = ["base", "gen", "gen-fa"]


class TestDistributedAlgorithms:
    """Spark-mode execution is numerically equivalent to local for all
    six algorithms of the paper's evaluation — under both the simulated
    and the real multiprocess distributed backend."""

    @staticmethod
    def _spark_engine(mode="gen", backend="simulated"):
        return Engine(
            mode=mode,
            config=CodegenConfig(
                cluster=ClusterConfig(n_workers=4, executor_mem=10e6),
                local_mem_budget=2e4,
                distributed_backend=backend,
                mp_workers=2,
            ),
        )

    @pytest.fixture(scope="class", params=["simulated", "multiprocess"])
    def backend(self, request):
        return request.param

    @pytest.fixture(scope="class")
    def data(self):
        from repro.data import generators

        return generators.classification_data(400, 12, n_classes=2, seed=1)

    @pytest.mark.parametrize("mode", SPARK_ALGO_MODES)
    def test_l2svm(self, data, mode, backend):
        from repro.algorithms import l2svm

        x, y = data
        ref = l2svm(x, y, engine=Engine(mode="base"), max_iter=3)
        got = l2svm(x, y, engine=self._spark_engine(mode, backend),
                    max_iter=3)
        np.testing.assert_allclose(
            got.model["w"].to_dense(), ref.model["w"].to_dense(),
            rtol=1e-6, atol=1e-9,
        )

    def test_mlogreg(self, data, backend):
        from repro.algorithms import mlogreg

        x, y = data
        labels = (y.to_dense() + 3) / 2
        ref = mlogreg(x, labels, 2, engine=Engine(mode="base"),
                      max_iter=2, max_inner=3)
        got = mlogreg(x, labels, 2,
                      engine=self._spark_engine(backend=backend),
                      max_iter=2, max_inner=3)
        np.testing.assert_allclose(
            got.model["beta"].to_dense(), ref.model["beta"].to_dense(),
            rtol=1e-6, atol=1e-9,
        )

    def test_glm(self, data, backend):
        from repro.algorithms import glm_binomial_probit

        x, y = data
        yb = (y.to_dense() + 1) / 2
        ref = glm_binomial_probit(x, yb, engine=Engine(mode="base"),
                                  max_iter=2, max_inner=3)
        got = glm_binomial_probit(x, yb,
                                  engine=self._spark_engine(backend=backend),
                                  max_iter=2, max_inner=3)
        np.testing.assert_allclose(
            got.model["beta"].to_dense(), ref.model["beta"].to_dense(),
            rtol=1e-6, atol=1e-9,
        )

    def test_kmeans(self, data, backend):
        from repro.algorithms import kmeans

        x, _ = data
        ref = kmeans(x, n_centroids=4, engine=Engine(mode="base"),
                     max_iter=3, seed=5)
        got = kmeans(x, n_centroids=4,
                     engine=self._spark_engine(backend=backend),
                     max_iter=3, seed=5)
        np.testing.assert_allclose(
            got.model["centroids"].to_dense(),
            ref.model["centroids"].to_dense(),
            rtol=1e-6, atol=1e-9,
        )

    def test_als_cg(self, backend):
        from repro.algorithms import als_cg

        x = MatrixBlock.rand(300, 40, sparsity=0.1, seed=9,
                             low=0.2, high=1.0)
        ref = als_cg(x, rank=4, engine=Engine(mode="base"), max_iter=2)
        got = als_cg(x, rank=4, engine=self._spark_engine(backend=backend),
                     max_iter=2)
        for factor in ("U", "V"):
            np.testing.assert_allclose(
                got.model[factor].to_dense(), ref.model[factor].to_dense(),
                rtol=1e-6, atol=1e-9,
            )

    def test_autoencoder(self, backend):
        from repro.algorithms import autoencoder
        from repro.data import generators

        x = generators.mnist_like(rows=600, seed=3)
        ref = autoencoder(x, h1=16, h2=2, engine=Engine(mode="base"),
                          batch_size=256, n_epochs=1)
        got = autoencoder(x, h1=16, h2=2,
                          engine=self._spark_engine(backend=backend),
                          batch_size=256, n_epochs=1)
        np.testing.assert_allclose(
            got.model["W1"].to_dense(), ref.model["W1"].to_dense(),
            rtol=1e-6, atol=1e-9,
        )
        np.testing.assert_allclose(ref.losses, got.losses, rtol=1e-6)
