"""Simulated distributed backend: correctness and cost accounting."""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.runtime.distributed import BlockedMatrix, _partition_bounds
from repro.runtime.matrix import MatrixBlock


def _cluster_config(budget=1e5, **cluster_kwargs) -> CodegenConfig:
    return CodegenConfig(
        cluster=ClusterConfig(**cluster_kwargs), local_mem_budget=budget
    )


class TestBlockedMatrix:
    def test_partition_bounds_cover_rows(self):
        bounds = _partition_bounds(100, 6)
        assert bounds[0][0] == 0 and bounds[-1][1] == 100
        covered = sum(hi - lo for lo, hi in bounds)
        assert covered == 100

    def test_partition_roundtrip_dense(self, rng):
        block = MatrixBlock(rng.random((50, 7)))
        blocked = BlockedMatrix.partition(block, 4)
        assert len(blocked.blocks) == 4
        np.testing.assert_allclose(blocked.collect().to_dense(), block.to_dense())

    def test_partition_roundtrip_sparse(self):
        block = MatrixBlock.rand(60, 10, sparsity=0.1, seed=4)
        blocked = BlockedMatrix.partition(block, 5)
        np.testing.assert_allclose(blocked.collect().to_dense(), block.to_dense())

    def test_more_partitions_than_rows(self, rng):
        block = MatrixBlock(rng.random((3, 2)))
        blocked = BlockedMatrix.partition(block, 8)
        assert len(blocked.blocks) == 3


class TestDistributedExecution:
    def test_results_identical_to_local(self, rng):
        data = rng.random((5000, 20))  # 800 KB > 100 KB budget
        v = rng.random((20, 1))

        def build():
            x = api.matrix(data, "X")
            return [x.T @ (x @ api.matrix(v, "v")), (x * 2.0 + 1.0).sum()]

        local = api.eval_all(build(), engine=Engine(mode="base"))
        for mode in ("base", "gen", "gen-fa"):
            engine = Engine(mode=mode, config=_cluster_config())
            dist = api.eval_all(build(), engine=engine)
            np.testing.assert_allclose(
                dist[0].to_dense(), local[0].to_dense(), rtol=1e-9
            )
            assert dist[1] == pytest.approx(local[1])
            assert engine.stats.n_distributed_ops > 0

    def test_small_ops_stay_local(self, rng):
        data = rng.random((10, 4))  # tiny: below budget
        engine = Engine(mode="base", config=_cluster_config())
        api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        assert engine.stats.n_distributed_ops == 0

    def test_broadcast_charged_for_side_inputs(self, rng):
        data = rng.random((5000, 20))
        v = rng.random((5000, 1))
        engine = Engine(mode="base", config=_cluster_config())
        api.eval(
            (api.matrix(data, "X") * api.matrix(v, "v")).sum(), engine=engine
        )
        assert engine.stats.sim_broadcast_bytes > 0
        assert engine.stats.sim_seconds > 0

    def test_rdd_cache_avoids_rereads(self, rng):
        data = rng.random((5000, 20))

        def build(x):
            return [(x * 2.0).sum(), (x * 3.0).sum(), (x + 1.0).sum()]

        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        first = api.eval_all(build(x), engine=engine)
        cost_three_reads = engine.stats.sim_seconds
        engine2 = Engine(mode="base", config=_cluster_config())
        api.eval_all(build(api.matrix(data, "X"))[:1], engine=engine2)
        cost_one_read = engine2.stats.sim_seconds
        # Three cached re-reads must cost far less than three cold reads.
        assert cost_three_reads < 2.5 * cost_one_read

    def test_broadcast_pressure_evicts_cache(self, rng):
        data = rng.random((5000, 20))
        side = rng.random((5000, 1))
        config = _cluster_config(executor_mem=2e5)  # tiny aggregate memory

        def build():
            x = api.matrix(data, "X")
            s = api.matrix(side, "s")
            return [((x * s) + s).sum()]

        engine = Engine(mode="base", config=config)
        api.eval_all(build() * 1, engine=engine)
        large_mem = Engine(mode="base", config=_cluster_config())
        api.eval_all(build(), engine=large_mem)
        assert engine.stats.sim_seconds >= large_mem.stats.sim_seconds

    def test_distributed_spoof_operator(self, rng):
        data = rng.random((5000, 30))
        engine = Engine(mode="gen", config=_cluster_config())
        x = api.matrix(data, "X")
        result = api.eval((x * x * 2.0).sum(), engine=engine)
        assert result == pytest.approx(float((data * data * 2.0).sum()))
        assert engine.stats.n_distributed_ops >= 1

    def test_exec_type_selection(self, rng):
        from repro.hops.types import ExecType

        data = rng.random((5000, 20))
        engine = Engine(mode="base", config=_cluster_config())
        x = api.matrix(data, "X")
        expr = (x * 2.0).sum()
        engine.execute([expr.hop])
        # The cell op over X exceeds the budget.
        assert any(
            h.exec_type is ExecType.SPARK
            for h in [expr.hop] + expr.hop.inputs
            if h.is_matrix or h.inputs
        )
