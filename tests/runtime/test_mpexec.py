"""Multiprocess distributed backend (repro.runtime.mpexec).

Covers the transport round-trip contract for all three block formats,
bit-identity against the simulated backend, fault injection (worker
death and straggler timeout recover via lineage recompute), locality
reuse, worker stats/span merge-back, and the ThreadBudget
oversubscription guard when the pool runs under a SessionScheduler.
"""

import json

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.errors import RuntimeExecError
from repro.runtime import mpexec
from repro.runtime import parallel as parallel_mod
from repro.runtime.compressed import CompressedMatrix, compress
from repro.runtime.matrix import MatrixBlock
from repro.runtime.parallel import ThreadBudget


def _mp_config(**kwargs) -> CodegenConfig:
    defaults = dict(
        cluster=ClusterConfig(n_workers=4, executor_mem=10e6),
        local_mem_budget=2e4,
        distributed_backend="multiprocess",
        mp_workers=2,
    )
    defaults.update(kwargs)
    return CodegenConfig(**defaults)


def _mp_engine(**kwargs) -> Engine:
    return Engine(mode="gen", config=_mp_config(**kwargs))


def _backend(engine) -> mpexec.ProcessPoolBackend:
    backend = engine._spark.backend
    assert backend is not None
    return backend


# ----------------------------------------------------------------------
# Transport contract
# ----------------------------------------------------------------------
class TestTransportContract:
    """encode/decode and the real worker round-trip must preserve every
    block format exactly — a silent corruption of a compressed group
    would poison every downstream operator."""

    def test_dense_encodes_shared_memory(self, rng):
        block = MatrixBlock(rng.random((64, 64)))  # 32 KB > threshold
        segments = []
        desc, shm_b, pkl_b = mpexec.encode_value(block, segments)
        assert desc[0] == "shm" and shm_b == block.to_dense().nbytes
        assert pkl_b == 0.0 and len(segments) == 1
        value, seg = mpexec.decode_value(desc)
        try:
            assert isinstance(value, MatrixBlock)
            np.testing.assert_array_equal(
                value.to_dense(), block.to_dense()
            )
            assert not value.to_dense().flags.writeable
        finally:
            del value
            if seg is not None:
                seg.close()
            segments[0].close()
            segments[0].unlink()

    def test_small_dense_takes_pickle_path(self, rng):
        block = MatrixBlock(rng.random((4, 4)))
        desc, shm_b, pkl_b = mpexec.encode_value(block, [])
        assert desc[0] == "raw" and shm_b == 0.0 and pkl_b > 0.0
        value, seg = mpexec.decode_value(desc)
        assert seg is None and value is block

    def test_csr_takes_pickle_path(self):
        block = MatrixBlock.rand(64, 64, sparsity=0.05, seed=3)
        assert block.is_sparse
        desc, shm_b, _pkl_b = mpexec.encode_value(block, [])
        assert desc[0] == "raw" and shm_b == 0.0

    def test_worker_roundtrip_dense_shm(self, rng):
        engine = _mp_engine()
        block = MatrixBlock(rng.random((50, 20)))
        (got,) = _backend(engine).roundtrip([block], force_shm=True)
        assert isinstance(got, MatrixBlock) and not got.is_sparse
        np.testing.assert_array_equal(got.to_dense(), block.to_dense())
        summary = engine.stats.distributed_backend_summary()
        assert summary["mp_shm_mb"] > 0.0

    def test_worker_roundtrip_csr(self):
        engine = _mp_engine()
        block = MatrixBlock.rand(60, 12, sparsity=0.1, seed=5)
        (got,) = _backend(engine).roundtrip([block])
        assert isinstance(got, MatrixBlock) and got.is_sparse
        np.testing.assert_array_equal(got.to_dense(), block.to_dense())

    def test_worker_roundtrip_compressed(self, rng):
        # Low-cardinality columns produce DDC/OLE groups; adjacent
        # low-cardinality pairs co-code into multi-column groups.
        dense = np.column_stack(
            [
                rng.integers(0, 3, 200).astype(float),
                rng.integers(0, 2, 200).astype(float),
                (rng.random(200) < 0.05) * 7.0,  # mostly-zero: OLE
                rng.random(200),  # incompressible fallback column
            ]
        )
        cm = compress(MatrixBlock(dense), co_code=True)
        assert isinstance(cm, CompressedMatrix)
        engine = _mp_engine()
        (got,) = _backend(engine).roundtrip([cm])
        assert isinstance(got, CompressedMatrix)
        assert got.shape == cm.shape
        assert len(got.groups) == len(cm.groups)
        for ours, theirs in zip(cm.groups, got.groups):
            assert theirs.encoding == ours.encoding
            assert theirs.cols == ours.cols
            np.testing.assert_array_equal(
                theirs.dictionary, ours.dictionary
            )
        np.testing.assert_array_equal(
            got.decompress().to_dense(), dense
        )

    def test_scalars_pass_through(self):
        engine = _mp_engine()
        got = _backend(engine).roundtrip([3.5, None, (1, 2)])
        assert got == [3.5, None, (1, 2)]


# ----------------------------------------------------------------------
# Bit-identity vs the simulated backend
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_l2svm_bit_identical_across_backends(self):
        from repro.algorithms import l2svm
        from repro.data import generators

        x, y = generators.classification_data(400, 12, n_classes=2,
                                              seed=1)
        sim = l2svm(x, y, engine=Engine(
            mode="gen",
            config=_mp_config(distributed_backend="simulated"),
        ), max_iter=3)
        engine = _mp_engine()
        got = l2svm(x, y, engine=engine, max_iter=3)
        assert np.array_equal(
            got.model["w"].to_dense(), sim.model["w"].to_dense()
        )
        assert engine.stats.n_mp_tasks > 0

    def test_reduce_and_map_bit_identical(self, rng):
        data = rng.random((3000, 24))

        def run(backend):
            engine = Engine(
                mode="gen",
                config=_mp_config(distributed_backend=backend),
            )
            x = api.matrix(data, "X")
            return api.eval_all(
                [
                    ((x * 2.0) + 1.0).row_sums(),
                    x.col_sums(),
                    (x * x).sum(),
                ],
                engine=engine,
            )

        sim, mp = run("simulated"), run("multiprocess")
        np.testing.assert_array_equal(
            mp[0].to_dense(), sim[0].to_dense()
        )
        np.testing.assert_array_equal(
            mp[1].to_dense(), sim[1].to_dense()
        )
        assert mp[2] == sim[2]


# ----------------------------------------------------------------------
# Fault injection: death and stragglers recover via lineage recompute
# ----------------------------------------------------------------------
class TestFaultInjection:
    def _workload(self, engine, data):
        x = api.matrix(data, "X")
        return api.eval(((x * 2.0) + 1.0).row_sums(), engine=engine)

    def test_worker_death_recovers(self, rng):
        data = rng.random((3000, 20))
        ref = self._workload(Engine(mode="base"), data)
        engine = _mp_engine()
        _backend(engine).inject_failure("die")
        got = self._workload(engine, data)
        np.testing.assert_array_equal(got.to_dense(), ref.to_dense())
        summary = engine.stats.distributed_backend_summary()
        assert summary["n_worker_respawns"] >= 1
        assert summary["n_task_retries"] >= 1
        assert summary["n_lineage_recomputes"] >= 1

    def test_straggler_timeout_recovers(self, rng):
        data = rng.random((3000, 20))
        ref = self._workload(Engine(mode="base"), data)
        engine = _mp_engine(mp_task_timeout=1.5)
        _backend(engine).inject_failure("hang")
        got = self._workload(engine, data)
        np.testing.assert_array_equal(got.to_dense(), ref.to_dense())
        summary = engine.stats.distributed_backend_summary()
        assert summary["n_worker_respawns"] >= 1
        assert summary["n_task_retries"] >= 1

    def test_repeated_death_exhausts_retries(self, rng):
        data = rng.random((3000, 20))
        engine = _mp_engine(mp_max_retries=1)
        # Arm more faults than there are dispatches: first attempts AND
        # their retries die, so the retry budget must run out instead of
        # looping forever.
        _backend(engine).inject_failure("die", count=256)
        with pytest.raises(RuntimeExecError, match="failed after"):
            self._workload(engine, data)
        # Disarm leftover faults so the shared pool is clean.
        _backend(engine)._inject.clear()

    def test_summary_counters_are_zero_on_clean_runs(self, rng):
        engine = _mp_engine()
        self._workload(engine, rng.random((3000, 20)))
        summary = engine.stats.distributed_backend_summary()
        assert summary["n_task_retries"] == 0
        assert summary["n_lineage_recomputes"] == 0
        assert summary["n_worker_respawns"] == 0
        assert summary["n_mp_tasks"] > 0


# ----------------------------------------------------------------------
# Locality, stats merge-back, spans
# ----------------------------------------------------------------------
class TestLocalityAndStats:
    def test_repeated_input_hits_worker_caches(self, rng):
        data = MatrixBlock(rng.random((3000, 20)))
        engine = _mp_engine()
        for _ in range(3):
            api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        summary = engine.stats.distributed_backend_summary()
        assert summary["n_mp_locality_hits"] > 0
        assert summary["n_mp_block_ships"] < summary["n_mp_tasks"]

    def test_side_inputs_broadcast_once_per_operator(self, rng):
        data = rng.random((3000, 20))
        v = rng.random((20, 1))
        engine = _mp_engine()
        api.eval(
            (api.matrix(data, "X") @ api.matrix(v, "v")).sum(),
            engine=engine,
        )
        # One broadcast per participating worker per operator, never
        # one per task.
        assert 0 < engine.stats.n_mp_broadcasts <= (
            2 * engine.stats.n_distributed_ops
        )

    def test_worker_kernel_stats_merge_back(self, rng):
        engine = _mp_engine()
        data = rng.random((3000, 20))
        api.eval(
            (((api.matrix(data, "X") * 2.0) + 1.0) * 0.5).sum(),
            engine=engine,
        )
        # The fused operator ran only inside workers (the driver never
        # calls execute_operator on the backend path), so any run
        # counter proves worker stats merged back into the parent.
        assert engine.stats.n_mp_tasks > 0
        assert (
            engine.stats.n_compiled_runs
            + engine.stats.n_interpreted_runs
        ) > 0

    def test_worker_spans_merge_into_trace(self, rng, tmp_path):
        engine = Engine(
            mode="gen", config=_mp_config(trace_level="instructions")
        )
        data = rng.random((3000, 20))
        api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        path = tmp_path / "trace.json"
        engine.export_trace(str(path))
        with open(path) as handle:
            events = json.load(handle)["traceEvents"]
        mp_events = [e for e in events if e["name"] == "mp:task"]
        assert mp_events, "worker task spans missing from the trace"
        assert all(e["tid"] >= 1_000_000 for e in mp_events)


# ----------------------------------------------------------------------
# Fork-safety guards
# ----------------------------------------------------------------------
class TestSpawnGuards:
    def test_start_method_is_spawn(self):
        assert mpexec.start_method() == "spawn"

    def test_worker_rejects_nondeterministic_source(self, rng):
        """The worker-side regeneration assert: a shipped source that
        the cplan cannot reproduce byte-for-byte must be refused."""
        from repro.codegen import pygen
        from repro.runtime.stats import RuntimeStats

        engine = _mp_engine()
        data = rng.random((3000, 20))
        api.eval(
            ((api.matrix(data, "X") * 2.0) + 1.0).sum(), engine=engine
        )
        operators = [
            op for op in engine.plan_cache._cache.values()
            if isinstance(op, pygen.GeneratedOperator)
        ]
        assert operators
        op = operators[0]
        tampered = {op.name: (op.source + "\n# tampered", op.cplan,
                              engine.config.inline_primitives)}
        with pytest.raises(RuntimeExecError, match="diverged"):
            mpexec._materialize_operator(tampered, op.name,
                                         RuntimeStats())
        good = {op.name: (op.source, op.cplan,
                          engine.config.inline_primitives)}
        rebuilt = mpexec._materialize_operator(good, op.name,
                                               RuntimeStats())
        assert rebuilt.source == op.source

    def test_pool_under_scheduler_respects_thread_budget(
        self, rng, monkeypatch
    ):
        """A worker pool created from inside a SessionScheduler request
        must not oversubscribe the process-wide ThreadBudget."""
        from repro.serve.scheduler import SessionScheduler

        budget = ThreadBudget(total=4)
        monkeypatch.setattr(parallel_mod, "_BUDGET", budget)
        engine = _mp_engine(thread_budget=4)
        weights = rng.random((20, 1))

        def builder(inputs):
            x = inputs["X"]
            w = api.matrix(weights, "w")
            return [((x @ w) * 2.0).sum()]

        with SessionScheduler(engine, n_workers=2) as scheduler:
            prepared = scheduler.prepare(builder, name="mp-guarded")
            tickets = [
                scheduler.submit(
                    prepared, {"X": rng.random((3000, 20))}
                )
                for _ in range(4)
            ]
            results = [t.result(timeout=60) for t in tickets]
        assert len(results) == 4
        assert budget.peak <= 4
        assert engine.stats.n_mp_tasks > 0


# ----------------------------------------------------------------------
# Worker-side helpers (in-process units)
# ----------------------------------------------------------------------
class TestWorkerHelpers:
    """Drive the worker-side pieces directly in the parent process —
    the spawned twins run uninstrumented, so these keep the block
    cache, kernel dispatch, and stats export logic under test (and
    under coverage) without a child process in the loop."""

    def test_block_cache_lru_eviction(self, rng):
        block = MatrixBlock(rng.random((100, 10)))  # 8 KB each
        cache = mpexec._BlockCache(cap_bytes=2.5 * block.size_bytes)
        assert cache.put((1, ("v", 0), 0), block, None) == []
        assert cache.put((1, ("v", 0), 1), block, None) == []
        # Touch the oldest entry so the *other* one is evicted.
        assert cache.get((1, ("v", 0), 0)) is block
        evicted = cache.put((1, ("v", 0), 2), block, None)
        assert evicted == [(1, ("v", 0), 1)]
        assert cache.get((1, ("v", 0), 1)) is None
        assert cache.get((1, ("v", 0), 0)) is block

    def test_block_cache_prune_drops_dead_epochs(self, rng):
        block = MatrixBlock(rng.random((10, 10)))
        cache = mpexec._BlockCache(cap_bytes=1e9)
        cache.put((1, ("v", 0), 0), block, None)
        cache.put((1, ("v", 5), 0), block, None)
        cache.put((1, ("data", 7), 0), block, None)
        cache.put((2, ("v", 0), 0), block, None)  # other backend
        cache.prune(backend_id=1, live_epoch=5)
        assert cache.get((1, ("v", 0), 0)) is None
        assert cache.get((1, ("v", 5), 0)) is block
        assert cache.get((1, ("data", 7), 0)) is block
        assert cache.get((2, ("v", 0), 0)) is block

    def test_apply_spec_dispatch(self, rng):
        from repro.runtime.stats import RuntimeStats

        stats = RuntimeStats()
        a = MatrixBlock(rng.random((6, 4)) - 0.5)
        b = MatrixBlock(rng.random((6, 4)))
        got = mpexec._apply_spec(("unary", "abs"), [a], stats)
        np.testing.assert_array_equal(
            got.to_dense(), np.abs(a.to_dense())
        )
        got = mpexec._apply_spec(("binary", "+"), [a, b], stats)
        np.testing.assert_array_equal(
            got.to_dense(), a.to_dense() + b.to_dense()
        )
        got = mpexec._apply_spec(("agg_unary", "sum", "row"), [a], stats)
        np.testing.assert_array_equal(
            got.to_dense(), a.to_dense().sum(axis=1, keepdims=True)
        )
        got = mpexec._apply_spec(
            ("matmult",), [a, MatrixBlock(rng.random((4, 2)))], stats
        )
        assert got.shape == (6, 2)
        with pytest.raises(RuntimeExecError, match="unknown"):
            mpexec._apply_spec(("frobnicate",), [a], stats)

    def test_export_stats_keeps_nonzero_counters_only(self):
        from repro.runtime.stats import RuntimeStats

        stats = RuntimeStats()
        stats.n_compiled_runs = 3
        stats.sim_seconds = 0.25
        counters, metrics = mpexec._export_stats(stats)
        assert counters["n_compiled_runs"] == 3
        assert counters["sim_seconds"] == 0.25
        assert "n_interpreted_runs" not in counters  # zero: dropped
        assert metrics is None

    def test_run_task_hop_cache_and_miss(self, rng):
        block = MatrixBlock(rng.random((50, 8)) - 0.5)
        desc, _shm, _pkl = mpexec.encode_value(block, [])
        wkey = (1, ("v", 3), 0)
        caches: dict = {}
        task = {
            "cache_bytes": 1e6,
            "inputs": [("value", desc)],
            "kind": "hop",
            "spec": ("unary", "abs"),
            "cache_as": wkey,
        }
        result, stats, evicted, _holds = mpexec._run_task(
            task, caches, {}, {}
        )
        np.testing.assert_array_equal(
            result.to_dense(), np.abs(block.to_dense())
        )
        assert evicted == []
        # A follow-up task reads the cached output without a payload.
        echo = {
            "cache_bytes": 1e6,
            "inputs": [("block", wkey, None), ("bcast", 9, 0)],
            "kind": "echo",
        }
        values, _stats, _evicted, _holds = mpexec._run_task(
            echo, caches, {}, {9: [(4.5,)]}
        )
        np.testing.assert_array_equal(
            values[0].to_dense(), np.abs(block.to_dense())
        )
        assert values[1] == 4.5
        # A cold cache turns the same read into a miss reply.
        missed, payload, _evicted, _holds = mpexec._run_task(
            echo, {}, {}, {9: [(4.5,)]}
        )
        assert missed == wkey and payload is None


# ----------------------------------------------------------------------
# Summary surface
# ----------------------------------------------------------------------
class TestBackendSummary:
    def test_summary_shape(self, rng):
        engine = _mp_engine()
        api.eval(
            (api.matrix(rng.random((3000, 20)), "X") * 2.0).sum(),
            engine=engine,
        )
        summary = engine.stats.distributed_backend_summary()
        expected = {
            "n_mp_tasks", "n_mp_broadcasts", "n_mp_block_ships",
            "n_mp_locality_hits", "n_task_retries",
            "n_lineage_recomputes", "n_worker_respawns", "mp_shm_mb",
            "mp_pickle_mb", "shm_fraction", "mp_max_workers",
        }
        assert expected <= set(summary)
        assert summary["n_mp_tasks"] > 0
        assert summary["mp_max_workers"] >= 1
        assert 0.0 <= summary["shm_fraction"] <= 1.0
