"""Format layer: recommend_format policy and sparse kernel dispatch."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.hops import memory
from repro.hops.hop import DataOp
from repro.runtime import ops
from repro.runtime.matrix import (
    SPARSE_THRESHOLD,
    MatrixBlock,
    recommend_format,
)

RNG = np.random.default_rng(9)


def _sparse_block(rows=40, cols=30, density=0.05, seed=4) -> MatrixBlock:
    return MatrixBlock.rand(rows, cols, sparsity=density, seed=seed)


class TestRecommendFormat:
    def test_threshold_rule(self):
        assert recommend_format(10, 10, 10) == "sparse"  # 10% < 0.4
        assert recommend_format(10, 10, 60) == "dense"
        assert recommend_format(10, 10, 39) == "sparse"
        assert recommend_format(10, 10, 40) == "dense"  # exactly at 0.4

    def test_unknown_and_empty_default_dense(self):
        assert recommend_format(10, 10, -1) == "dense"
        assert recommend_format(0, 10, 0) == "dense"

    def test_examine_representation_follows_policy(self):
        dense_store = MatrixBlock(_sparse_block().to_dense())
        assert not dense_store.is_sparse
        assert dense_store.examine_representation().is_sparse
        ones = MatrixBlock(sp.csr_matrix(np.ones((8, 8))))
        assert not ones.examine_representation().is_sparse

    def test_custom_threshold(self):
        block = _sparse_block(density=0.3)
        assert recommend_format(
            block.rows, block.cols, block.nnz, threshold=0.1
        ) == "dense"

    def test_nnz_is_cached(self):
        block = _sparse_block()
        first = block.nnz
        assert block._nnz == first
        block.examine_representation()  # representation switch keeps it
        assert block.nnz == first


class TestSparseBinaryDispatch:
    @pytest.mark.parametrize("op", ["+", "-", "*", "min", "max"])
    def test_sparse_sparse_stays_sparse(self, op):
        a = _sparse_block(seed=1)
        b = _sparse_block(seed=2)
        result = ops.binary(op, a, b)
        assert result.is_sparse
        expected = ops._BINARY_FUNCS[op](a.to_dense(), b.to_dense())
        np.testing.assert_array_equal(result.to_dense(), expected)

    def test_sparse_dense_multiply_keeps_pattern(self):
        a = _sparse_block(seed=3)
        b = MatrixBlock(RNG.random((40, 30)) + 0.5)  # fully dense
        result = ops.binary("*", a, b)
        assert result.is_sparse
        np.testing.assert_array_equal(
            result.to_dense(), a.to_dense() * b.to_dense()
        )

    def test_dense_result_densifies_by_policy(self):
        a = _sparse_block(seed=5)
        b = _sparse_block(seed=6)
        # max with a dense operand fills nearly every cell.
        result = ops.binary("+", a, MatrixBlock(np.ones((40, 30))))
        assert not result.is_sparse


class TestSparseAggregations:
    @pytest.mark.parametrize("op", ["min", "max"])
    @pytest.mark.parametrize("direction", ["full", "row", "col"])
    def test_min_max_over_csr(self, op, direction):
        x = _sparse_block(seed=7)
        result = ops.agg_unary(op, x, direction)
        dense = x.to_dense()
        func = {"min": np.min, "max": np.max}[op]
        if direction == "full":
            assert result == func(dense)
        else:
            axis = 1 if direction == "row" else 0
            expected = func(dense, axis=axis)
            np.testing.assert_array_equal(
                result.to_dense().ravel(), expected.ravel()
            )


class TestSizeEstimates:
    def test_csr_size_accounts_for_indptr(self):
        block = _sparse_block(rows=100, cols=50, density=0.02)
        assert block.is_sparse
        expected = block.to_csr().nnz * 12.0 + 101 * 4.0
        assert block.size_bytes == expected

    def test_hop_output_bytes_matches_runtime_size(self):
        block = _sparse_block(rows=100, cols=50, density=0.02)
        hop = DataOp(block, name="X")
        # The estimate and the runtime block agree exactly for exact nnz
        # (explicit zeros aside).
        assert memory.output_bytes(hop) == block.nnz * 12.0 + 101 * 4.0

    def test_unknown_nnz_estimates_dense(self):
        block = _sparse_block(rows=100, cols=50, density=0.02)
        hop = DataOp(block, name="X", nnz_unknown=True)
        assert hop.nnz == -1
        assert memory.output_bytes(hop) == 100 * 50 * 8.0
