"""Tests of the vector-primitive library used by generated operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime import vector as vp


RNG = np.random.default_rng(3)


class TestReductions:
    def test_vect_sum_tile(self):
        a = RNG.random((4, 6))
        np.testing.assert_allclose(vp.vect_sum(a), a.sum(axis=1))

    def test_vect_sum_kd_shape(self):
        a = RNG.random((4, 6))
        result = vp.vect_sum_kd(a)
        assert result.shape == (4, 1)
        np.testing.assert_allclose(result.ravel(), a.sum(axis=1))

    def test_dot_product(self):
        a, b = RNG.random((3, 5)), RNG.random((3, 5))
        np.testing.assert_allclose(vp.dot_product(a, b), (a * b).sum(axis=1))

    def test_dot_product_kd(self):
        a, b = RNG.random((3, 5)), RNG.random((3, 5))
        assert vp.dot_product_kd(a, b).shape == (3, 1)

    def test_min_max_mean(self):
        a = RNG.random((4, 6))
        np.testing.assert_allclose(vp.vect_min_kd(a).ravel(), a.min(axis=1))
        np.testing.assert_allclose(vp.vect_max_kd(a).ravel(), a.max(axis=1))
        np.testing.assert_allclose(vp.vect_mean_kd(a).ravel(), a.mean(axis=1))


class TestMatrixShaped:
    def test_vect_matmult(self):
        a, block = RNG.random((4, 6)), RNG.random((6, 3))
        np.testing.assert_allclose(vp.vect_matmult(a, block), a @ block)

    def test_vect_tmatmult(self):
        a, block = RNG.random((4, 6)), RNG.random((3, 6))
        np.testing.assert_allclose(vp.vect_tmatmult(a, block), a @ block.T)

    def test_vect_outer_mult_add_tile(self):
        a, b = RNG.random((4, 6)), RNG.random((4, 3))
        c = np.zeros((6, 3))
        vp.vect_outer_mult_add(a, b, c)
        np.testing.assert_allclose(c, a.T @ b)

    def test_vect_outer_mult_add_single_row(self):
        a, b = RNG.random(6), RNG.random(3)
        c = np.zeros((6, 3))
        vp.vect_outer_mult_add(a, b, c)
        np.testing.assert_allclose(c, np.outer(a, b))

    def test_vect_cumsum(self):
        a = RNG.random((3, 5))
        np.testing.assert_allclose(vp.vect_cumsum(a), np.cumsum(a, axis=1))


class TestElementwise:
    def test_row_scalar_broadcast(self):
        tile = RNG.random((4, 6))
        scalar_col = vp.vect_sum_kd(tile)  # (4, 1)
        result = vp.vect_mult(tile, scalar_col)
        np.testing.assert_allclose(result, tile * tile.sum(axis=1, keepdims=True))

    def test_vect_mult_add(self):
        a = RNG.random((4, 6))
        s = vp.vect_sum_kd(a)
        c = np.ones((4, 6))
        vp.vect_mult_add(a, s, c)
        np.testing.assert_allclose(c, 1.0 + a * s)

    @pytest.mark.parametrize(
        "func,ref",
        [
            (vp.vect_exp, np.exp),
            (vp.vect_log, np.log),
            (vp.vect_sqrt, np.sqrt),
            (vp.vect_abs, np.abs),
            (vp.vect_sign, np.sign),
            (vp.vect_neg, np.negative),
            (vp.vect_pow2, np.square),
            (vp.vect_sigmoid, lambda x: 1 / (1 + np.exp(-x))),
        ],
    )
    def test_unary_matches_numpy(self, func, ref):
        a = RNG.random((3, 4)) + 0.1
        np.testing.assert_allclose(func(a), ref(a))

    def test_comparisons_indicator(self):
        a, b = RNG.random((3, 4)), RNG.random((3, 4))
        assert set(np.unique(vp.vect_lt(a, b))) <= {0.0, 1.0}
        np.testing.assert_array_equal(vp.vect_ge(a, a), np.ones_like(a))

    def test_ifelse(self):
        cond = np.array([[1.0, 0.0]])
        np.testing.assert_array_equal(
            vp.vect_ifelse(cond, 2.0, 3.0), np.array([[2.0, 3.0]])
        )

    def test_vect_div_by_zero_suppressed(self):
        a = np.ones((2, 2))
        b = np.zeros((2, 2))
        result = vp.vect_div(a, b)
        assert np.all(np.isinf(result))


class TestPrimitiveRegistry:
    def test_every_unary_primitive_exists(self):
        for name in vp.UNARY_PRIMITIVES.values():
            assert callable(getattr(vp, name))

    def test_every_binary_primitive_exists(self):
        for name in vp.BINARY_PRIMITIVES.values():
            assert callable(getattr(vp, name))


@given(
    rows=st.integers(1, 8),
    cols=st.integers(1, 8),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=50, deadline=None)
def test_outer_mult_add_property(rows, cols, seed):
    rng = np.random.default_rng(seed)
    a = rng.random((rows, cols))
    b = rng.random((rows, 3))
    c = np.zeros((cols, 3))
    vp.vect_outer_mult_add(a, b, c)
    expected = sum(np.outer(a[i], b[i]) for i in range(rows))
    np.testing.assert_allclose(c, expected, atol=1e-12)
