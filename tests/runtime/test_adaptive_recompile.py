"""Adaptive recompilation: observed metadata corrects frozen estimates.

A program compiled over an input with unknown nnz assumes dense; at the
first recompilation segment boundary the executor observes the actual
sparsity, recompiles the remainder to a sparse (and, under ``gen``,
fused sparse-safe) plan, and produces bit-identical results measurably
faster than the estimate-frozen plan.
"""

import time

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

RNG = np.random.default_rng(11)


def _sparse_as_dense_block(rows, cols, density, seed=5) -> MatrixBlock:
    """A dense-STORED block whose values are mostly zero."""
    rng = np.random.default_rng(seed)
    arr = np.zeros((rows, cols))
    mask = rng.random((rows, cols)) < density
    arr[mask] = rng.random(int(mask.sum())) + 0.5
    return MatrixBlock(arr)


def _chain(block: MatrixBlock):
    X = api.matrix(block, name="X", nnz_unknown=True)
    return (X * 3.0) * api.abs_(X)


def _chain_reference(block: MatrixBlock) -> np.ndarray:
    arr = block.to_dense()
    return (arr * 3.0) * np.abs(arr)


def _engine(mode: str, adaptive: bool, **overrides) -> Engine:
    config = CodegenConfig(adaptive_recompile=adaptive, **overrides)
    return Engine(mode=mode, config=config)


class TestMarkersAndSegments:
    def test_unknown_input_marks_instructions_and_segments(self):
        block = _sparse_as_dense_block(50, 40, 0.01)
        engine = _engine("base", adaptive=True)
        program = engine.compile([_chain(block).hop])
        assert program.has_recompile_markers
        marked = [i for i in program.instructions if i.meta_checks]
        assert marked, "instructions consuming unknown metadata are marked"
        segments = program.recompile_segments()
        assert segments[0][0] == 0
        assert segments[-1][1] == program.n_instructions

    def test_known_inputs_produce_no_markers(self):
        block = _sparse_as_dense_block(50, 40, 0.01)
        X = api.matrix(block, name="X")  # nnz known
        engine = _engine("base", adaptive=True)
        program = engine.compile([((X * 3.0) * api.abs_(X)).hop])
        assert not program.has_recompile_markers
        assert all(not i.meta_checks for i in program.instructions)

    def test_mid_program_segment_boundary(self):
        """The first marked instruction need not be instruction 0."""
        a = api.matrix(RNG.random((30, 20)), name="A")
        b = api.matrix(RNG.random((20, 30)), name="B")
        x = api.matrix(_sparse_as_dense_block(30, 30, 0.01), name="X",
                       nnz_unknown=True)
        engine = _engine("base", adaptive=True)
        program = engine.compile([((a @ b) * x).hop])
        marked = [i.index for i in program.instructions if i.meta_checks]
        assert marked == [1]  # the multiply, not the known matmult
        assert program.recompile_segments() == [(0, 1), (1, 2)]


class TestRecompilation:
    def test_recompiles_to_sparse_plan_bit_identical(self):
        block = _sparse_as_dense_block(400, 300, 0.01)
        frozen_engine = _engine("base", adaptive=False)
        frozen = api.eval(_chain(block), engine=frozen_engine)
        assert frozen_engine.stats.n_recompiles == 0

        adaptive_engine = _engine("base", adaptive=True)
        result = api.eval(_chain(block), engine=adaptive_engine)
        stats = adaptive_engine.stats
        assert stats.n_recompiles > 0
        assert stats.n_estimate_misses > 0
        assert stats.n_format_conversions > 0
        assert stats.recompile_divergence_hist  # ratios were bucketed
        # The recompiled plan kept the data sparse end-to-end.
        assert result.is_sparse
        # Bit-identical vs the serial dense path (sparse-safe cell ops
        # apply the same float ops per non-zero; zeros stay exact).
        assert np.array_equal(result.to_dense(), frozen.to_dense())
        assert np.array_equal(result.to_dense(), _chain_reference(block))

    @pytest.mark.parametrize("mode", ["gen", "fused", "gen-fa"])
    def test_all_modes_recompile_and_agree(self, mode):
        block = _sparse_as_dense_block(300, 200, 0.01)
        engine = _engine(mode, adaptive=True)
        result = api.eval(_chain(block), engine=engine)
        assert engine.stats.n_recompiles > 0
        assert np.array_equal(result.to_dense(), _chain_reference(block))

    def test_gen_mode_recompiles_into_fused_sparse_operator(self):
        block = _sparse_as_dense_block(400, 300, 0.01)
        engine = _engine("gen", adaptive=True)
        result = api.eval(_chain(block), engine=engine)
        assert engine.stats.n_recompiles > 0
        # The regenerated plan still fuses (Cell template executions).
        assert engine.stats.spoof_executions.get("Cell", 0) > 0
        assert np.array_equal(result.to_dense(), _chain_reference(block))

    def test_mid_program_recompile_uses_observed_intermediate(self):
        a_arr = RNG.random((40, 30))
        b_arr = RNG.random((30, 40))
        x_block = _sparse_as_dense_block(40, 40, 0.01)
        a = api.matrix(a_arr, name="A")
        b = api.matrix(b_arr, name="B")
        x = api.matrix(x_block, name="X", nnz_unknown=True)
        engine = _engine("base", adaptive=True)
        result = api.eval((a @ b) * x, engine=engine)
        assert engine.stats.n_recompiles == 1
        expected = (a_arr @ b_arr) * x_block.to_dense()
        np.testing.assert_allclose(result.to_dense(), expected, rtol=1e-12)

    def test_recompile_counts_as_one_run(self):
        block = _sparse_as_dense_block(150, 100, 0.01)
        engine = _engine("base", adaptive=True, executor_mode="serial")
        api.eval(_chain(block), engine=engine)
        assert engine.stats.n_recompiles == 1
        # The recompiled remainder continues the same logical run.
        assert engine.stats.n_serial_runs == 1

    def test_recompiled_remainder_regains_parallel_scheduler(self):
        """An unmarked recompiled program may use the thread pool."""
        block = _sparse_as_dense_block(120, 90, 0.01)
        X = api.matrix(block, name="X", nnz_unknown=True)
        roots = [X * 2.0, api.abs_(X) * X, X * 0.5 * X]  # wide remainder
        engine = _engine("base", adaptive=True,
                         executor_threads=4, parallel_min_cells=0)
        results = api.eval_all(roots, engine=engine)
        stats = engine.stats
        assert stats.n_recompiles == 1
        # The marked original ran serially; the recompiled remainder
        # dispatched to the pool (visible via task counters).
        assert stats.n_parallel_tasks > 0
        assert stats.n_serial_runs == 1
        arr = block.to_dense()
        for result, expected in zip(results, [
            arr * 2.0, np.abs(arr) * arr, arr * 0.5 * arr,
        ]):
            assert np.array_equal(result.to_dense(), expected)

    def test_multi_root_remainder_mapping(self):
        block = _sparse_as_dense_block(200, 150, 0.01)
        X = api.matrix(block, name="X", nnz_unknown=True)
        y1 = X * 2.0
        y2 = api.abs_(X) * X
        engine = _engine("base", adaptive=True)
        r1, r2 = api.eval_all([y1, y2], engine=engine)
        assert engine.stats.n_recompiles >= 1
        arr = block.to_dense()
        assert np.array_equal(r1.to_dense(), arr * 2.0)
        assert np.array_equal(r2.to_dense(), np.abs(arr) * arr)


class TestTriggerPolicy:
    def test_no_recompile_when_observation_matches_estimate(self):
        dense = MatrixBlock(RNG.random((100, 80)))  # actually dense
        engine = _engine("base", adaptive=True)
        result = api.eval(_chain(dense), engine=engine)
        stats = engine.stats
        assert stats.n_meta_checks > 0  # boundary was checked...
        assert stats.n_recompiles == 0  # ...but estimates held
        assert np.array_equal(result.to_dense(), _chain_reference(dense))

    def test_divergence_ratio_is_configurable(self):
        block = _sparse_as_dense_block(100, 80, 0.2)  # 5x off, not 100x
        loose = _engine("base", adaptive=True,
                        recompile_divergence_ratio=50.0)
        api.eval(_chain(block), engine=loose)
        assert loose.stats.n_recompiles == 0
        tight = _engine("base", adaptive=True,
                        recompile_divergence_ratio=3.0)
        api.eval(_chain(block), engine=tight)
        assert tight.stats.n_recompiles > 0

    def test_max_recompiles_bounds_the_loop(self):
        block = _sparse_as_dense_block(100, 80, 0.01)
        engine = _engine("base", adaptive=True, max_recompiles_per_run=0)
        result = api.eval(_chain(block), engine=engine)
        assert engine.stats.n_recompiles == 0
        assert np.array_equal(result.to_dense(), _chain_reference(block))

    def test_adaptive_disabled_is_fully_frozen(self):
        block = _sparse_as_dense_block(100, 80, 0.01)
        engine = _engine("base", adaptive=False)
        result = api.eval(_chain(block), engine=engine)
        stats = engine.stats
        assert stats.n_recompiles == 0
        assert stats.n_meta_checks == 0
        assert stats.n_format_conversions == 0
        assert np.array_equal(result.to_dense(), _chain_reference(block))


class TestSpeedup:
    def test_recompiled_sparse_plan_is_measurably_faster(self):
        """Acceptance: unknown-nnz program on a <=1%-dense input beats
        the estimate-frozen dense plan after its segment recompile."""
        block = _sparse_as_dense_block(2000, 1500, 0.005)

        def best_of(engine, repeats=3):
            times = []
            for _ in range(repeats):
                start = time.perf_counter()
                result = api.eval(_chain(block), engine=engine)
                times.append(time.perf_counter() - start)
            return min(times), result

        frozen_engine = _engine("base", adaptive=False)
        adaptive_engine = _engine("base", adaptive=True)
        api.eval(_chain(block), engine=frozen_engine)  # warmup both
        api.eval(_chain(block), engine=adaptive_engine)
        frozen_time, frozen = best_of(frozen_engine)
        adaptive_time, adapted = best_of(adaptive_engine)
        assert adaptive_engine.stats.n_recompiles > 0
        assert np.array_equal(adapted.to_dense(), frozen.to_dense())
        assert adaptive_time < frozen_time, (
            f"adaptive {adaptive_time * 1e3:.1f}ms not faster than "
            f"frozen {frozen_time * 1e3:.1f}ms"
        )
