"""Intra-operator parallel fused execution.

Differential grid (template × out-type × main-input storage) asserting
parallel-vs-serial equality of ``execute_operator``, bit-identical
determinism of repeated parallel aggregations, direct unit tests for
``reduce_spoof_partials`` combining, and the process-wide thread-budget
oversubscription guard.
"""

import numpy as np
import pytest

from repro import api
from repro.codegen.cplan import CPlan, OutType
from repro.codegen.template import TemplateType
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.errors import RuntimeExecError
from repro.runtime import parallel as parallel_mod
from repro.runtime import skeletons
from repro.runtime.compressed import compress
from repro.runtime.matrix import MatrixBlock
from repro.runtime.parallel import ThreadBudget
from repro.runtime.skeletons import (
    partition_bounds,
    reduce_spoof_partials,
    tree_reduce,
)

ROWS, COLS = 96, 24


def _serial_engine() -> Engine:
    return Engine(mode="gen", config=CodegenConfig(intra_op_threads=1))


def _parallel_engine(threads: int = 4, **kwargs) -> Engine:
    config = CodegenConfig(
        intra_op_threads=threads, intra_op_min_cells=1, **kwargs
    )
    return Engine(mode="gen", config=config)


def _as_arrays(values):
    return [
        v.to_dense() if isinstance(v, MatrixBlock) else np.float64(v)
        for v in values
    ]


# ----------------------------------------------------------------------
# Differential grid: template × out-type × main-input storage
# ----------------------------------------------------------------------
def _main_block(storage: str) -> object:
    rng = np.random.default_rng(23)
    if storage == "dense":
        return MatrixBlock(rng.uniform(0.1, 1.0, (ROWS, COLS)))
    if storage == "sparse":
        return MatrixBlock.rand(
            ROWS, COLS, sparsity=0.15, seed=23, low=0.2, high=1.5
        )
    # Few distinct values per column, so compression is non-trivial.
    return compress(MatrixBlock(np.round(rng.uniform(0, 3, (ROWS, COLS)))))


_CELL_RECIPES = {
    "no_agg": lambda x, y: [x * y * 2.0],
    "row_agg": lambda x, y: [(x * y).row_sums()],
    "col_agg": lambda x, y: [(x * y).col_sums()],
    "full_agg": lambda x, y: [(x * y).sum()],
    "multi_agg": lambda x, y: [(x * y).sum(), (x * x).sum()],
    # Single-input sum aggregates: over a compressed main these hit the
    # dictionary-only skeleton, whose parallel form partitions by
    # column groups instead of row ranges.
    "full_agg_selfmul": lambda x, y: [(x * x).sum()],
}


@pytest.mark.parametrize("storage", ["dense", "sparse", "compressed"])
@pytest.mark.parametrize("out_type", sorted(_CELL_RECIPES))
def test_cell_grid_parallel_matches_serial(out_type, storage):
    main = _main_block(storage)
    side = np.random.default_rng(5).uniform(0.5, 1.5, (ROWS, COLS))

    def build():
        x = api.matrix(main, "X")
        y = api.matrix(side, "Y")
        return _CELL_RECIPES[out_type](x, y)

    serial = _as_arrays(api.eval_all(build(), engine=_serial_engine()))
    engine = _parallel_engine()
    parallel = _as_arrays(api.eval_all(build(), engine=engine))
    for expected, actual in zip(serial, parallel):
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-12)
    assert engine.stats.n_intra_op_parallel >= 1
    assert engine.stats.n_intra_op_partitions >= 2


_ROW_RECIPES = {
    "no_agg": lambda x, v: [api.sigmoid(x @ v)],
    "col_agg_t": lambda x, v: [x.T @ (x @ v)],
    "full_agg": lambda x, v: [(x @ v).sum()],
}


@pytest.mark.parametrize("storage", ["dense", "sparse", "compressed"])
@pytest.mark.parametrize("out_type", sorted(_ROW_RECIPES))
def test_row_grid_parallel_matches_serial(out_type, storage):
    main = _main_block(storage)
    vec = np.random.default_rng(6).uniform(0.1, 1.0, (COLS, 1))

    def build():
        x = api.matrix(main, "X")
        v = api.matrix(vec, "v")
        return _ROW_RECIPES[out_type](x, v)

    serial = _as_arrays(api.eval_all(build(), engine=_serial_engine()))
    engine = _parallel_engine()
    parallel = _as_arrays(api.eval_all(build(), engine=engine))
    for expected, actual in zip(serial, parallel):
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-12)
    assert engine.stats.n_intra_op_parallel >= 1


_OUTER_RECIPES = {
    "outer_no_agg": lambda s, u, v: [s * (u @ v.T)],
    "outer_left": lambda s, u, v: [((s != 0.0) * (u @ v.T)).T @ u],
    "outer_right": lambda s, u, v: [((s != 0.0) * (u @ v.T)) @ v],
    "outer_full_agg": lambda s, u, v: [
        (s * api.log(u @ v.T + 1e-15)).sum()
    ],
}


@pytest.mark.parametrize("storage", ["sparse", "dense"])
@pytest.mark.parametrize("out_type", sorted(_OUTER_RECIPES))
def test_outer_grid_parallel_matches_serial(out_type, storage):
    rng = np.random.default_rng(9)
    if storage == "sparse":
        driver = MatrixBlock.rand(120, 100, sparsity=0.08, seed=31)
    else:
        driver = MatrixBlock(rng.uniform(0.1, 1.0, (120, 100)))
    u = rng.uniform(0.1, 1.0, (120, 4))
    v = rng.uniform(0.1, 1.0, (100, 4))

    def build():
        s = api.matrix(driver, "S")
        um, vm = api.matrix(u, "U"), api.matrix(v, "V")
        return _OUTER_RECIPES[out_type](s, um, vm)

    serial = _as_arrays(api.eval_all(build(), engine=_serial_engine()))
    engine = _parallel_engine()
    parallel = _as_arrays(api.eval_all(build(), engine=engine))
    for expected, actual in zip(serial, parallel):
        np.testing.assert_allclose(actual, expected, rtol=1e-8, atol=1e-11)


# ----------------------------------------------------------------------
# Determinism: fixed partition count + fixed combine topology
# ----------------------------------------------------------------------
class TestParallelDeterminism:
    """Repeated parallel runs must be bit-identical, not just allclose —
    the partition count comes from the config and the tree-reduce pairs
    partials in a fixed order, so floating-point reassociation is
    frozen (mirrors the PR 2 ``sim_seconds`` determinism test)."""

    def _run(self, build):
        engine = _parallel_engine()
        results = _as_arrays(api.eval_all(build(), engine=engine))
        assert engine.stats.n_intra_op_parallel >= 1
        return results

    @pytest.mark.parametrize("recipe", ["full_agg", "multi_agg", "col_agg"])
    def test_repeated_runs_bit_identical(self, recipe):
        data = np.random.default_rng(41).uniform(-1.0, 1.0, (128, 32))
        other = np.random.default_rng(42).uniform(-1.0, 1.0, (128, 32))

        def build():
            x = api.matrix(data, "X")
            y = api.matrix(other, "Y")
            return _CELL_RECIPES[recipe](x, y)

        first = self._run(build)
        second = self._run(build)
        for a, b in zip(first, second):
            assert np.array_equal(a, b)  # exact, no tolerance

    def test_combine_levels_match_fixed_topology(self):
        data = np.random.default_rng(43).uniform(0.1, 1.0, (128, 32))

        def build():
            x = api.matrix(data, "X")
            return [(x * x).sum()]

        engine = _parallel_engine(threads=4)
        api.eval_all(build(), engine=engine)
        stats = engine.stats
        assert stats.n_intra_op_partitions == 4
        assert stats.intra_op_combine_levels == 2  # ceil(log2(4))


class TestCompressedRowAlignedSides:
    """Regression: a row-aligned *compressed* side input cannot be
    row-sliced, so partition-wise execution must decompress it first —
    otherwise every partition reads rows [0, len) of the full side
    through partition-local indices and silently computes garbage."""

    def _setup(self):
        rng = np.random.default_rng(77)
        x = rng.uniform(0.1, 1.0, (ROWS, COLS))
        # Few distinct values per column so the side genuinely compresses.
        y = compress(MatrixBlock(np.round(rng.uniform(0, 3, (ROWS, COLS)))))
        v = rng.uniform(0.1, 1.0, (COLS, 1))

        def build():
            xm = api.matrix(x, "X")
            ym = api.matrix(y, "Y")
            vm = api.matrix(v, "v")
            return [api.sigmoid(xm @ vm) * (ym @ vm)]

        return build

    def test_intra_op_parallel_matches_serial(self):
        build = self._setup()
        serial = _as_arrays(api.eval_all(build(), engine=_serial_engine()))
        engine = _parallel_engine()
        parallel = _as_arrays(api.eval_all(build(), engine=engine))
        np.testing.assert_allclose(parallel[0], serial[0], rtol=1e-9)

    def test_spark_partitioning_matches_serial(self):
        from repro.config import ClusterConfig

        build = self._setup()
        serial = _as_arrays(api.eval_all(build(), engine=_serial_engine()))
        engine = Engine(
            mode="gen",
            config=CodegenConfig(cluster=ClusterConfig(),
                                 local_mem_budget=1e3),
        )
        spark = _as_arrays(api.eval_all(build(), engine=engine))
        np.testing.assert_allclose(spark[0], serial[0], rtol=1e-9)


def test_parallel_summary_keys():
    engine = _parallel_engine()
    data = np.random.default_rng(2).uniform(0.1, 1.0, (ROWS, COLS))
    api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
    summary = engine.stats.parallel_summary()
    assert {
        "n_intra_op_parallel",
        "n_intra_op_partitions",
        "mean_partitions",
        "intra_op_combine_levels",
        "intra_op_max_threads",
        "n_budget_degraded_runs",
        "n_parallel_runs",
        "n_serial_runs",
        "executor_max_concurrency",
    } == set(summary)
    assert summary["n_intra_op_parallel"] == 1
    assert summary["mean_partitions"] == 4.0


# ----------------------------------------------------------------------
# reduce_spoof_partials unit tests
# ----------------------------------------------------------------------
def _agg_cplan(out_type: OutType, agg_ops: list[str]) -> CPlan:
    return CPlan(
        ttype=TemplateType.CELL,
        out_type=out_type,
        roots=[],
        inputs=[],
        main_index=-1,
        agg_ops=agg_ops,
    )


class TestReduceSpoofPartials:
    def test_full_agg_min(self):
        cplan = _agg_cplan(OutType.FULL_AGG, ["min"])
        result, levels = reduce_spoof_partials(
            cplan, [3.0, -1.5, 2.0, 0.5], tree_reduce
        )
        assert result == -1.5
        assert levels == 2

    def test_full_agg_max(self):
        cplan = _agg_cplan(OutType.FULL_AGG, ["max"])
        result, levels = reduce_spoof_partials(cplan, [3.0, 7.0, 2.0], tree_reduce)
        assert result == 7.0
        assert levels == 2

    def test_col_agg_min_max_blocks(self):
        for agg, reducer in (("min", np.minimum), ("max", np.maximum)):
            cplan = _agg_cplan(OutType.COL_AGG, [agg])
            parts = [
                MatrixBlock(np.array([[1.0, 5.0, -2.0]])),
                MatrixBlock(np.array([[0.5, 9.0, -1.0]])),
                MatrixBlock(np.array([[2.0, 4.0, -3.0]])),
            ]
            result, levels = reduce_spoof_partials(cplan, parts, tree_reduce)
            expected = reducer.reduce([p.to_dense() for p in parts])
            np.testing.assert_array_equal(result.to_dense(), expected)
            assert levels == 2

    def test_multi_agg_mixed_ops(self):
        """Each MULTI_AGG root row combines under its own aggregate."""
        cplan = _agg_cplan(OutType.MULTI_AGG, ["sum", "min", "max"])
        parts = [
            MatrixBlock(np.array([[1.0], [5.0], [-2.0]])),
            MatrixBlock(np.array([[2.0], [3.0], [4.0]])),
            MatrixBlock(np.array([[3.0], [8.0], [0.0]])),
        ]
        result, _ = reduce_spoof_partials(cplan, parts, tree_reduce)
        np.testing.assert_array_equal(
            result.to_dense(), np.array([[6.0], [3.0], [4.0]])
        )

    def test_multi_agg_missing_op_defaults_to_sum(self):
        cplan = _agg_cplan(OutType.MULTI_AGG, ["min"])
        parts = [
            MatrixBlock(np.array([[4.0], [1.0]])),
            MatrixBlock(np.array([[2.0], [2.0]])),
        ]
        result, _ = reduce_spoof_partials(cplan, parts, tree_reduce)
        np.testing.assert_array_equal(result.to_dense(), [[2.0], [3.0]])

    def test_single_partial_passthrough(self):
        cplan = _agg_cplan(OutType.FULL_AGG, ["min"])
        result, levels = reduce_spoof_partials(cplan, [4.25], tree_reduce)
        assert result == 4.25
        assert levels == 0

    def test_empty_partition_partials_are_neutral_for_sum(self):
        """All-zero partitions (e.g. empty sparse row ranges) contribute
        identity partials under sum aggregation."""
        cplan = _agg_cplan(OutType.FULL_AGG, ["sum"])
        result, _ = reduce_spoof_partials(cplan, [0.0, 2.5, 0.0, 1.5], tree_reduce)
        assert result == 4.0

    def test_zero_partials_raise(self):
        cplan = _agg_cplan(OutType.FULL_AGG, ["sum"])
        with pytest.raises(RuntimeExecError):
            reduce_spoof_partials(cplan, [], tree_reduce)

    def test_non_aggregating_out_type_raises(self):
        cplan = _agg_cplan(OutType.NO_AGG, [])
        with pytest.raises(RuntimeExecError):
            reduce_spoof_partials(cplan, [1.0], tree_reduce)


class TestTreeReduce:
    def test_fixed_pairwise_topology(self):
        order = []

        def combine(a, b):
            order.append((a, b))
            return a + b

        result, levels = tree_reduce([1, 2, 3, 4, 5], combine)
        assert result == 15
        assert levels == 3
        # Level 1: (1,2), (3,4); level 2: (3,7); level 3: (10,5) — the
        # odd tail always joins last, never reordered.
        assert order == [(1, 2), (3, 4), (3, 7), (10, 5)]

    def test_partition_bounds_cover_all_rows(self):
        bounds = partition_bounds(97, 4)
        assert bounds[0][0] == 0 and bounds[-1][1] == 97
        assert sum(hi - lo for lo, hi in bounds) == 97


# ----------------------------------------------------------------------
# Thread budget / oversubscription guard
# ----------------------------------------------------------------------
class TestThreadBudget:
    def test_grants_within_total(self):
        budget = ThreadBudget(total=4)
        first = budget.acquire(3)
        second = budget.acquire(3)
        assert first == 3 and second == 1
        assert budget.acquire(2) == 0  # exhausted, no minimum
        budget.release(first)
        assert budget.acquire(2) == 2
        assert budget.peak == 4

    def test_minimum_guarantees_liveness(self):
        budget = ThreadBudget(total=1)
        held = budget.acquire(1)
        assert budget.acquire(4, minimum=1) == 1
        budget.release(held)

    def test_limit_caps_effective_total(self):
        budget = ThreadBudget(total=8)
        assert budget.acquire(8, limit=2) == 2

    def test_run_tasks_preserves_order_and_errors(self, monkeypatch):
        monkeypatch.setattr(parallel_mod, "_BUDGET", ThreadBudget(total=8))
        results, workers = parallel_mod.run_tasks(
            [(lambda i=i: i * i) for i in range(7)]
        )
        assert results == [i * i for i in range(7)]
        assert workers >= 1

        def boom():
            raise ValueError("partition failure")

        with pytest.raises(ValueError):
            parallel_mod.run_tasks([boom, lambda: 1])


class TestOversubscriptionGuard:
    def test_nested_layers_stay_within_budget(self, monkeypatch):
        """Serving workers + parallel executor + intra-op partitioning
        never hold more tokens than the configured budget."""
        from repro.serve.scheduler import SessionScheduler

        budget = ThreadBudget(total=4)
        monkeypatch.setattr(parallel_mod, "_BUDGET", budget)
        engine = Engine(
            mode="gen",
            config=CodegenConfig(
                executor_mode="parallel",
                executor_threads=2,
                parallel_min_cells=0,
                intra_op_threads=4,
                intra_op_min_cells=1,
            ),
        )
        rng = np.random.default_rng(3)
        weights = rng.uniform(0.1, 1.0, (COLS, 1))

        def builder(inputs):
            x = inputs["X"]
            w = api.matrix(weights, "w")
            return [(x @ w).sum(), (x * x).sum()]

        with SessionScheduler(engine, n_workers=2) as scheduler:
            prepared = scheduler.prepare(builder, name="guarded")
            tickets = [
                scheduler.submit(
                    prepared,
                    {"X": rng.uniform(0.1, 1.0, (ROWS, COLS))},
                )
                for _ in range(6)
            ]
            results = [t.result(timeout=30) for t in tickets]
        assert len(results) == 6
        assert budget.peak <= 4
        assert engine.stats.n_requests_served == 6

    def test_single_thread_takes_exact_serial_path(self, monkeypatch):
        """``intra_op_threads=1`` must not even plan partitions."""

        def forbidden(*args, **kwargs):
            raise AssertionError("_plan_intra_op called with 1 thread")

        monkeypatch.setattr(skeletons, "_plan_intra_op", forbidden)
        data = np.random.default_rng(8).uniform(0.1, 1.0, (ROWS, COLS))
        engine = _serial_engine()
        result = api.eval((api.matrix(data, "X") * 2.0).sum(), engine=engine)
        assert result == pytest.approx(float((data * 2.0).sum()))
        assert engine.stats.n_intra_op_parallel == 0
        assert engine.stats.n_intra_op_partitions == 0

    def test_exhausted_budget_degrades_to_caller_thread(self, monkeypatch):
        """With the budget fully claimed, intra-op execution still
        completes (serially on the calling thread) and records a
        single-worker grant."""
        budget = ThreadBudget(total=1)
        monkeypatch.setattr(parallel_mod, "_BUDGET", budget)
        held = budget.acquire(1)
        data = np.random.default_rng(12).uniform(0.1, 1.0, (ROWS, COLS))
        engine = _parallel_engine()
        result = api.eval((api.matrix(data, "X") * 3.0).sum(), engine=engine)
        budget.release(held)
        assert result == pytest.approx(float((data * 3.0).sum()))
        # Partitioning still happened (fixed count), only the worker
        # grant degraded — determinism is independent of the budget.
        assert engine.stats.n_intra_op_parallel == 1
        assert engine.stats.n_intra_op_partitions == 4
        assert engine.stats.intra_op_max_threads == 1
