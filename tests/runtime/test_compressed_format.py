"""COMPRESSED as a first-class runtime format.

Covers the three-format policy (`recommend_format` with a
distinct-value estimate), auto-compression at recompile boundaries
(`observed_block`), admission-relevant size estimates (`memory.py`),
the compressed dispatch in `runtime/ops.py` with its stay-compressed
output policy, and the end-to-end acceptance property: sum-aggregated
sparse-safe cell pipelines run over compressed inputs with *zero*
decompressions.
"""

import numpy as np
import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.compiler.recompile import observed_block
from repro.config import CodegenConfig
from repro.hops.hop import DataOp
from repro.hops import memory
from repro.runtime import ops as rops
from repro.runtime.compressed import CompressedMatrix, compress, estimate_distinct
from repro.runtime.matrix import (
    MatrixBlock,
    estimate_compressed_bytes,
    recommend_format,
)
from repro.runtime.stats import RuntimeStats


def _categorical_block(rows=200, cols=100, levels=3, seed=0):
    rng = np.random.default_rng(seed)
    return MatrixBlock(rng.integers(1, levels + 1, (rows, cols)).astype(np.float64))


class TestRecommendFormat:
    def test_compressed_for_low_distinct_dense(self):
        # 200x100 dense with 2 distinct values: dictionary + 1B DDC
        # codes undercut 8B dense cells by far more than the 2x floor.
        assert recommend_format(200, 100, 20_000, distinct=2.0) == "compressed"

    def test_unknown_distinct_keeps_two_format_policy(self):
        assert recommend_format(200, 100, 20_000) == "dense"
        assert recommend_format(200, 100, 100) == "sparse"

    def test_high_distinct_stays_dense(self):
        # Distinct ~ rows: the dictionary is as large as the data.
        assert recommend_format(200, 100, 20_000, distinct=200.0) == "dense"

    def test_ratio_floor_gates_compression(self):
        fmt_loose = recommend_format(200, 100, 20_000, distinct=2.0,
                                     compress_ratio=1.0)
        fmt_tight = recommend_format(200, 100, 20_000, distinct=2.0,
                                     compress_ratio=1e9)
        assert fmt_loose == "compressed"
        assert fmt_tight == "dense"

    def test_compressed_can_beat_sparse(self):
        # Ultra-sparse with a tiny dictionary: OLE's 4B offsets beat
        # CSR's 12B per non-zero.
        rows, cols, nnz = 100_000, 10, 20_000
        assert recommend_format(rows, cols, nnz) == "sparse"
        assert recommend_format(rows, cols, nnz, distinct=2.0) == "compressed"


class TestEstimates:
    def test_compressed_bytes_monotone_in_distinct(self):
        small = estimate_compressed_bytes(1000, 10, 10_000, 2.0)
        large = estimate_compressed_bytes(1000, 10, 10_000, 500.0)
        assert small < large

    def test_estimate_distinct_counts_unique_values(self):
        block = MatrixBlock(np.tile([[1.0, 2.0], [1.0, 3.0]], (50, 1)))
        assert estimate_distinct(block) == pytest.approx(1.5)

    def test_estimate_distinct_sparse_input(self):
        block = MatrixBlock.rand(500, 4, sparsity=0.1, seed=1)
        est = estimate_distinct(block, sample_rows=500)
        dense = block.to_dense()
        exact = np.mean([len(np.unique(dense[:, j])) for j in range(4)])
        assert est == pytest.approx(exact)

    def test_memory_output_bytes_uses_compressed_footprint(self):
        comp = compress(_categorical_block())
        hop = DataOp(comp, "X")
        assert memory.output_bytes(hop) == pytest.approx(comp.size_bytes)
        assert memory.output_bytes(hop) < comp.uncompressed_bytes


class TestObservedBlock:
    def _config(self, **kwargs):
        return CodegenConfig(**kwargs)

    def test_dense_low_distinct_block_compresses(self):
        block = _categorical_block(rows=200, cols=100, levels=2, seed=2)
        stats = RuntimeStats()
        out = observed_block(block, self._config(), stats)
        assert isinstance(out, CompressedMatrix)
        assert stats.n_compressions == 1
        assert stats.n_format_conversions == 1
        np.testing.assert_array_equal(
            out.decompress().to_dense(), block.to_dense()
        )

    def test_small_block_skips_compression(self):
        block = _categorical_block(rows=20, cols=10, levels=2, seed=3)
        out = observed_block(block, self._config())
        assert isinstance(out, MatrixBlock)

    def test_disabled_flag_skips_compression(self):
        block = _categorical_block(rows=200, cols=100, levels=2, seed=4)
        out = observed_block(block, self._config(compressed_execution=False))
        assert isinstance(out, MatrixBlock)

    def test_sparse_recommendation_still_converts_to_csr(self):
        arr = np.zeros((300, 80))
        arr[::9, ::7] = 1.0
        stats = RuntimeStats()
        out = observed_block(MatrixBlock(arr), self._config(), stats)
        assert isinstance(out, MatrixBlock) and out.is_sparse
        assert stats.n_compressions == 0


class TestOpsDispatch:
    def test_scalar_op_stays_compressed(self):
        comp = compress(_categorical_block(seed=5))
        stats = RuntimeStats()
        out = rops.binary("*", comp, 2.0, stats=stats)
        assert isinstance(out, CompressedMatrix)
        assert stats.n_compressed_ops == 1
        assert stats.n_decompressions == 0
        np.testing.assert_allclose(
            out.decompress().to_dense(), comp.decompress().to_dense() * 2.0
        )

    def test_unary_stays_compressed(self):
        comp = compress(_categorical_block(seed=6))
        stats = RuntimeStats()
        out = rops.unary("sqrt", comp, stats=stats)
        assert isinstance(out, CompressedMatrix)
        assert stats.n_compressed_ops == 1
        np.testing.assert_allclose(
            out.decompress().to_dense(),
            np.sqrt(comp.decompress().to_dense()),
        )

    def test_aggregations_run_on_dictionaries(self):
        comp = compress(_categorical_block(seed=7))
        dense = comp.decompress().to_dense()
        stats = RuntimeStats()
        assert rops.agg_unary("sum", comp, stats=stats) == pytest.approx(dense.sum())
        assert rops.agg_unary("min", comp, stats=stats) == pytest.approx(dense.min())
        assert rops.agg_unary("max", comp, stats=stats) == pytest.approx(dense.max())
        np.testing.assert_allclose(
            rops.agg_unary("sum", comp, "row", stats=stats).to_dense().ravel(),
            dense.sum(axis=1),
        )
        assert stats.n_decompressions == 0
        assert stats.n_compressed_ops == 4

    def test_unsupported_op_decompresses_and_counts(self):
        comp = compress(_categorical_block(seed=8))
        stats = RuntimeStats()
        out = rops.cumsum(comp, stats=stats)
        assert isinstance(out, MatrixBlock)
        assert stats.n_decompressions == 1
        np.testing.assert_allclose(
            out.to_dense(), np.cumsum(comp.decompress().to_dense(), axis=0)
        )

    def test_matvec_stays_dictionary_direct(self):
        comp = compress(_categorical_block(seed=9))
        v = np.random.default_rng(10).random((comp.cols, 1))
        stats = RuntimeStats()
        out = rops.matmult(comp, MatrixBlock(v), stats=stats)
        assert stats.n_decompressions == 0
        np.testing.assert_allclose(
            out.to_dense(), comp.decompress().to_dense() @ v
        )


class TestEndToEndStaysCompressed:
    """Acceptance: a sum-aggregated sparse-safe cell pipeline over a
    compressed input executes with zero decompressions."""

    @pytest.mark.parametrize("mode", ["base", "gen"])
    def test_zero_decompressions(self, mode):
        block = _categorical_block(rows=500, cols=6, levels=4, seed=11)
        comp = compress(block)
        engine = Engine(mode=mode)
        x = api.matrix(comp, name="X")
        result = api.eval(((x * x) * 2.0).sum(), engine=engine)
        assert result == pytest.approx(2.0 * np.sum(block.to_dense() ** 2))
        summary = engine.stats.compressed_summary()
        assert summary["n_compressed_ops"] >= 1
        assert summary["n_decompressions"] == 0
