"""Intra-operator parallel fused execution: 1/2/4-thread scaling.

One workload per template (Cell, MAgg, Row, Outer), each dominated by a
single large fused operator — exactly the shape the inter-instruction
scheduler cannot parallelize (one heavy instruction, no independent
branches) and intra-operator row partitioning can.  Engines run with
the serial instruction executor so the measured scaling isolates the
partition workers.

On a multicore host the Row template must reach >= 1.3x at 4 threads
over 1 thread; single-core hosts still execute (and verify) every
configuration but skip the speedup assertion.

Run directly (writes JSON when ``REPRO_BENCH_JSON`` is set)::

    PYTHONPATH=src python benchmarks/bench_intra_op_parallel.py

or via pytest: ``pytest benchmarks/bench_intra_op_parallel.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import api
from repro.bench.harness import (
    BenchResult,
    maybe_export_json,
    print_table,
    time_best,
)
from repro.compiler.execution import Engine
from repro.config import CodegenConfig

try:
    from conftest import QUICK
except ImportError:  # direct `python benchmarks/...` invocation
    QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

THREADS = [1, 2, 4]
ROWS = 2_000 if QUICK else 400_000
COLS = 20
OUTER_DIM = (500, 400) if QUICK else (8_000, 6_000)
RANK = 8
_CACHE: dict = {}


def _data():
    if not _CACHE:
        rng = np.random.default_rng(17)
        _CACHE["X"] = rng.random((ROWS, COLS))
        _CACHE["Y"] = rng.random((ROWS, COLS))
        _CACHE["v"] = rng.random((COLS, 1))
        from repro.runtime.matrix import MatrixBlock

        n, m = OUTER_DIM
        _CACHE["S"] = MatrixBlock.rand(n, m, sparsity=0.05, seed=5)
        _CACHE["U"] = rng.random((n, RANK))
        _CACHE["V"] = rng.random((m, RANK))
    return _CACHE


def _workloads():
    data = _data()

    def cell():
        x, y = api.matrix(data["X"], "X"), api.matrix(data["Y"], "Y")
        return [(api.exp(x * 0.5) * y + x).sum()]

    def magg():
        x, y = api.matrix(data["X"], "X"), api.matrix(data["Y"], "Y")
        return [(x * y).sum(), (x * x).sum()]

    def row():
        x = api.matrix(data["X"], "X")
        v = api.matrix(data["v"], "v")
        return [x.T @ (x @ v)]

    def outer():
        s = api.matrix(data["S"], "S")
        u, v = api.matrix(data["U"], "U"), api.matrix(data["V"], "V")
        return [(s * api.log(u @ v.T + 1e-15)).sum()]

    return [("cell", cell), ("magg", magg), ("row", row), ("outer", outer)]


def _engine(threads: int) -> Engine:
    # Serial instruction executor: single-operator programs leave the
    # inter-instruction scheduler nothing to overlap anyway, and this
    # pins the measurement on the intra-op partition workers.
    config = CodegenConfig(
        executor_mode="serial",
        intra_op_threads=threads,
        intra_op_min_cells=1,
    )
    return Engine(mode="gen", config=config)


def run(repeats: int = 3) -> list[BenchResult]:
    results = []
    for name, build in _workloads():
        result = BenchResult(label=f"{name} template")
        for threads in THREADS:
            engine = _engine(threads)

            def evaluate():
                return api.eval_all(build(), engine=engine)

            evaluate()  # warmup: compile + plan-cache fill
            result.seconds[f"{threads}t"] = time_best(evaluate, repeats)
            result.stats[f"{threads}t"] = engine.stats.parallel_summary()
        results.append(result)
    return results


@pytest.mark.bench
def test_intra_op_scaling(benchmark):
    results = run()
    by_label = {r.label: r for r in results}

    def evaluate():
        engine = _engine(4)
        return api.eval_all(_workloads()[2][1](), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=1, iterations=1, warmup_rounds=0)

    for result in results:
        # Multi-threaded configurations actually partitioned, and every
        # thread count computed allclose-equal results (the engines all
        # ran the same expressions; numeric equality is asserted by the
        # differential tests — here we assert the mechanism engaged).
        assert result.stats["4t"]["n_intra_op_parallel"] >= 1, result.label
        assert result.stats["1t"]["n_intra_op_parallel"] == 0, result.label
    if (os.cpu_count() or 1) >= 4 and not QUICK:
        # Acceptance: >= 1.3x at 4 threads for the row template on a
        # large dense input.  Retry to ride out transient machine load;
        # each attempt is already best-of-3.
        row = by_label["row template"]
        for _ in range(2):
            if row.seconds["1t"] / row.seconds["4t"] >= 1.3:
                break
            row = {r.label: r for r in run()}["row template"]
        assert row.seconds["1t"] / row.seconds["4t"] >= 1.3


def main() -> None:
    results = run()
    modes = [f"{t}t" for t in THREADS]
    print_table("Intra-operator parallel fused execution", modes, results)
    for result in results:
        speedup = result.seconds["1t"] / max(result.seconds["4t"], 1e-12)
        summary = result.stats["4t"]
        print(f"\n{result.label}: 4-thread speedup {speedup:.2f}x "
              f"on {os.cpu_count()} cpu(s)")
        print(f"  partitions={summary['n_intra_op_partitions']} "
              f"combine_levels={summary['intra_op_combine_levels']} "
              f"max_threads={summary['intra_op_max_threads']}")
    path = maybe_export_json(
        "intra_op_parallel", results, extra={"cpus": os.cpu_count()}
    )
    if path:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
