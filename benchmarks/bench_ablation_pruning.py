"""Ablation: the optimizer's design choices (beyond the paper's plots).

DESIGN.md calls out three levers of the cost-based optimizer; this
bench isolates each on the algorithm set:

* cost-based pruning (the skip-ahead lower bound of Algorithm 2),
* structural pruning (cut sets over the reachability graph),
* the plan cache (operator reuse across recompiled DAGs).

Reported per configuration: end-to-end runtime, plans costed, operators
compiled.  Expected: disabling cost pruning inflates costed plans;
disabling the plan cache inflates compilations; results stay identical
(asserted).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import kmeans, l2svm
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.data import generators

_CACHE: dict = {}


def _data():
    if not _CACHE:
        x, y = generators.classification_data(5000, 30, n_classes=2, seed=101)
        _CACHE["x"], _CACHE["y"] = x, y
    return _CACHE


CONFIGS = {
    "full": dict(),
    "no-cost-prune": dict(enable_cost_pruning=False),
    "no-structural": dict(enable_structural_pruning=False),
    "no-plan-cache": dict(plan_cache_enabled=False),
    "no-pruning": dict(enable_cost_pruning=False, enable_structural_pruning=False),
}


@pytest.mark.bench
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_ablation_l2svm(benchmark, config_name):
    data = _data()
    holder = {}

    def run():
        engine = Engine(mode="gen", config=CodegenConfig(**CONFIGS[config_name]))
        result = l2svm(data["x"], data["y"], engine=engine, max_iter=5)
        holder["stats"] = engine.stats
        holder["loss"] = result.final_loss

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = holder["stats"]
    benchmark.extra_info.update(
        {
            "plans_evaluated": stats.n_plans_evaluated,
            "plans_skipped": f"{stats.n_plans_skipped:.0f}",
            "classes_compiled": stats.n_classes_compiled,
        }
    )


@pytest.mark.bench
def test_ablation_invariants(benchmark):
    """Pruning must not change results; it must change search effort."""

    def run():
        data = _data()
        outcomes = {}
        for name, kwargs in CONFIGS.items():
            engine = Engine(mode="gen", config=CodegenConfig(**kwargs))
            result = kmeans(data["x"], n_centroids=4, engine=engine,
                            max_iter=4, seed=3)
            outcomes[name] = (
                result.losses[-1],
                engine.stats.n_plans_evaluated,
                engine.stats.n_classes_compiled,
            )
        losses = {round(v[0], 6) for v in outcomes.values()}
        assert len(losses) == 1, "pruning changed the selected plans' results"
        # Cost pruning reduces (or equals) the number of costed plans.
        assert outcomes["no-cost-prune"][1] >= outcomes["full"][1]
        # Disabling the plan cache compiles at least as many operators.
        assert outcomes["no-plan-cache"][2] >= outcomes["full"][2]

    benchmark.pedantic(run, rounds=1, iterations=1)
