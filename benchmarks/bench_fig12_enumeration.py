"""Figure 12: Plan enumeration and pruning.

For each algorithm we report the number of evaluated plans under three
configurations:

* **all**: no partitioning — the analytic search-space size
  2^(total interesting points per DAG), summed over DAGs (the paper
  likewise reports infeasible analytic counts, e.g. 2^71 for
  AutoEncoder's largest DAG),
* **partition**: independent partitions, exhaustive per partition
  (sum of 2^|M'_i|, analytic),
* **partition+prune**: the measured number of plans actually costed by
  MPSkipEnum with cost-based and structural pruning.

Expected shape: partitioning cuts plans by orders of magnitude and
pruning cuts them again — no algorithm needs more than a few thousand
costed plans.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.algorithms import (
    als_cg,
    autoencoder,
    glm_binomial_probit,
    kmeans,
    l2svm,
    mlogreg,
)
from repro.codegen import explore as explore_mod
from repro.codegen.partitions import build_partitions
from repro.compiler.execution import Engine
from repro.data import generators

_CACHE: dict = {}


def _data():
    if not _CACHE:
        x, y = generators.classification_data(1500, 30, n_classes=2, seed=51)
        _CACHE["x"], _CACHE["y"] = x, y
        xm, labels = generators.classification_data(1500, 30, n_classes=4, seed=52)
        _CACHE["xm"], _CACHE["labels"] = xm, labels
        _CACHE["y01"] = (y.to_dense() + 1) / 2
        _CACHE["fact"] = generators.factorization_data(400, 300, rank=3,
                                                       sparsity=0.03, seed=53)
        _CACHE["dense"] = generators.rand_dense(1024, 30, seed=54)
    return _CACHE


ALGOS = {
    "L2SVM": lambda d, e: l2svm(d["x"], d["y"], engine=e, max_iter=4),
    "MLogreg": lambda d, e: mlogreg(d["xm"], d["labels"], 4, engine=e,
                                    max_iter=2, max_inner=3),
    "GLM": lambda d, e: glm_binomial_probit(d["x"], d["y01"], engine=e,
                                            max_iter=2, max_inner=3),
    "KMeans": lambda d, e: kmeans(d["x"], n_centroids=4, engine=e, max_iter=4),
    "ALS-CG": lambda d, e: als_cg(d["fact"], rank=3, engine=e, max_iter=2),
    "AutoEncoder": lambda d, e: autoencoder(
        d["dense"], h1=20, h2=2, engine=e, batch_size=256, n_epochs=1
    ),
}


class _SearchSpaceProbe:
    """Wraps exploration to also record analytic search-space sizes."""

    def __init__(self):
        self.all_plans = 0.0
        self.partition_plans = 0.0
        self.original_explore = explore_mod.explore

    def __enter__(self):
        probe = self

        def wrapped(roots, config, prune_dominated=False):
            memo = probe.original_explore(roots, config, prune_dominated)
            if memo.group_ids():
                parts = build_partitions(memo, roots)
                total_points = sum(len(p.points) for p in parts)
                probe.all_plans += float(2 ** min(total_points, 1023))
                probe.partition_plans += float(
                    sum(2 ** min(len(p.points), 1023) for p in parts)
                )
            return memo

        explore_mod.explore = wrapped
        # The optimizer module imported the symbol directly.
        import repro.codegen.optimizer as opt

        self._opt_original = opt.explore
        opt.explore = wrapped
        return self

    def __exit__(self, *exc):
        explore_mod.explore = self.original_explore
        import repro.codegen.optimizer as opt

        opt.explore = self._opt_original


@pytest.mark.bench
@pytest.mark.parametrize("algo", list(ALGOS))
def test_fig12_enumeration_counts(benchmark, algo):
    data = _data()
    holder = {}

    def run():
        with _SearchSpaceProbe() as probe:
            engine = Engine(mode="gen")
            ALGOS[algo](data, engine)
            holder["evaluated"] = engine.stats.n_plans_evaluated
            holder["skipped"] = engine.stats.n_plans_skipped
            holder["all"] = probe.all_plans
            holder["partition"] = probe.partition_plans

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {
            "all_plans": f"{holder['all']:.3g}",
            "partition_plans": f"{holder['partition']:.3g}",
            "evaluated_with_pruning": holder["evaluated"],
            "skipped_by_pruning": f"{holder['skipped']:.3g}",
        }
    )
    # The paper's claims: pruned enumeration needs at most a few
    # thousand plans, far below the partitioned analytic space.
    assert holder["evaluated"] <= holder["partition"] or holder["partition"] == 0
    assert holder["evaluated"] < 100_000
