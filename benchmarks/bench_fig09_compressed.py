"""Figure 9: Compressed linear algebra — sum(X^2) over ULA vs CLA.

Paper datasets: Airline78 (dense, ratio 7.44x) and Mnist8m (sparse,
ratio 7.32x); reproduction uses the stand-in generators at 1/100 scale.
Expected shape: on uncompressed data (ULA), Fused/Gen beat Base by
avoiding the X^2 intermediate; on compressed data (CLA) all engines are
fast because X^2 is computed over the dictionary only, and Gen comes
remarkably close to the hand-coded CLA operations.
"""

from __future__ import annotations

import pytest

from conftest import quick_trim

from repro import api
from repro.compiler.execution import Engine
from repro.data import generators
from repro.runtime.compressed import compress

MODES = ["base", "fused", "gen"]
#: Quick mode keeps one dataset; the ULA/CLA/correctness split stays.
DATASETS = quick_trim(["airline", "mnist"])
_CACHE: dict = {}


def _dataset(name: str):
    if name not in _CACHE:
        if name == "airline":
            block = generators.airline_like(rows=120_000, seed=5)
        else:
            block = generators.mnist_like(rows=20_000, seed=6)
        _CACHE[name] = block
    return _CACHE[name]


def _compressed(name: str):
    key = f"{name}-cla"
    if key not in _CACHE:
        _CACHE[key] = compress(_dataset(name))
    return _CACHE[key]


def _build(block):
    x = api.matrix(block, "X")
    return [(x * x).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_fig09_ula(benchmark, dataset, mode):
    block = _dataset(dataset)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(block), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["representation"] = "ULA"


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_fig09_cla(benchmark, dataset, mode):
    comp = _compressed(dataset)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(comp), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["representation"] = "CLA"
    benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig09_correctness_and_ratio(benchmark, dataset):
    """CLA results must equal ULA; compression must be favorable."""
    import numpy as np

    def run():
        block = _dataset(dataset)
        comp = _compressed(dataset)
        expected = api.eval(_build(block)[0], engine=Engine(mode="base"))
        for mode in MODES:
            got = api.eval(_build(comp)[0], engine=Engine(mode=mode))
            assert np.isclose(got, expected, rtol=1e-9)
        assert comp.compression_ratio > 2.0
        benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig09_dictionary_direct_beats_decompress_first(benchmark, dataset):
    """CI smoke assertion for the compressed fast path.

    Dictionary-direct execution (sum((X*2)^2) over the compressed
    block, zero decompressions) must beat decompress-then-execute, hold
    the compression-ratio floor, and agree bit-for-bit with the dense
    oracle — the generators produce integer-valued data, so every
    summation order yields the identical float64.
    """
    from repro.bench.harness import (
        BenchResult, maybe_export_json, time_best,
    )

    block = _dataset(dataset)
    comp = _compressed(dataset)
    assert comp.compression_ratio > 2.0

    def build(value):
        x = api.matrix(value, "X")
        return ((x * 2.0) * (x * 2.0)).sum()

    def direct():
        engine = Engine(mode="gen")
        result = api.eval(build(comp), engine=engine)
        summary = engine.stats.compressed_summary()
        assert summary["n_compressed_ops"] >= 1
        assert summary["n_decompressions"] == 0
        return result

    def decompress_first():
        return api.eval(build(comp.decompress()), engine=Engine(mode="gen"))

    oracle = api.eval(build(block), engine=Engine(mode="base"))
    assert direct() == oracle  # bit-parity vs the dense oracle
    assert decompress_first() == oracle

    direct_s = time_best(direct)
    indirect_s = time_best(decompress_first)
    speedup = indirect_s / max(direct_s, 1e-12)
    assert speedup > 1.0, (
        f"dictionary-direct {direct_s*1e3:.1f}ms not faster than "
        f"decompress-first {indirect_s*1e3:.1f}ms"
    )

    result = BenchResult(label=f"fig09-{dataset}")
    result.seconds["dictionary-direct"] = direct_s
    result.seconds["decompress-first"] = indirect_s
    result.stats["compression_ratio"] = round(comp.compression_ratio, 2)
    result.stats["speedup"] = round(speedup, 2)
    maybe_export_json("fig09-compressed-smoke", [result])
    benchmark.extra_info["speedup"] = round(speedup, 2)
    benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)
    benchmark.pedantic(direct, rounds=1, iterations=1)
