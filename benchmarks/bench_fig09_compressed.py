"""Figure 9: Compressed linear algebra — sum(X^2) over ULA vs CLA.

Paper datasets: Airline78 (dense, ratio 7.44x) and Mnist8m (sparse,
ratio 7.32x); reproduction uses the stand-in generators at 1/100 scale.
Expected shape: on uncompressed data (ULA), Fused/Gen beat Base by
avoiding the X^2 intermediate; on compressed data (CLA) all engines are
fast because X^2 is computed over the dictionary only, and Gen comes
remarkably close to the hand-coded CLA operations.
"""

from __future__ import annotations

import pytest

from conftest import quick_trim

from repro import api
from repro.compiler.execution import Engine
from repro.data import generators
from repro.runtime.compressed import compress

MODES = ["base", "fused", "gen"]
#: Quick mode keeps one dataset; the ULA/CLA/correctness split stays.
DATASETS = quick_trim(["airline", "mnist"])
_CACHE: dict = {}


def _dataset(name: str):
    if name not in _CACHE:
        if name == "airline":
            block = generators.airline_like(rows=120_000, seed=5)
        else:
            block = generators.mnist_like(rows=20_000, seed=6)
        _CACHE[name] = block
    return _CACHE[name]


def _compressed(name: str):
    key = f"{name}-cla"
    if key not in _CACHE:
        _CACHE[key] = compress(_dataset(name))
    return _CACHE[key]


def _build(block):
    x = api.matrix(block, "X")
    return [(x * x).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_fig09_ula(benchmark, dataset, mode):
    block = _dataset(dataset)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(block), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["representation"] = "ULA"


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("mode", MODES)
def test_fig09_cla(benchmark, dataset, mode):
    comp = _compressed(dataset)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(comp), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["representation"] = "CLA"
    benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig09_correctness_and_ratio(benchmark, dataset):
    """CLA results must equal ULA; compression must be favorable."""
    import numpy as np

    def run():
        block = _dataset(dataset)
        comp = _compressed(dataset)
        expected = api.eval(_build(block)[0], engine=Engine(mode="base"))
        for mode in MODES:
            got = api.eval(_build(comp)[0], engine=Engine(mode=mode))
            assert np.isclose(got, expected, rtol=1e-9)
        assert comp.compression_ratio > 2.0
        benchmark.extra_info["compression_ratio"] = round(comp.compression_ratio, 2)

    benchmark.pedantic(run, rounds=1, iterations=1)
