"""Serving throughput: cold vs warm plan reuse under concurrent clients.

The serving subsystem exists to amortize the compile pipeline across
repeated requests (the paper's plan-cache motivation, Section 2.1 /
Figure 11, lifted to whole programs).  This benchmark measures
requests/sec for a scoring script at 1/4/8 client threads under two
regimes:

* **cold** — every request pays the full pipeline: a fresh engine and
  prepared program per request (no plan cache, no specializations),
* **warm** — one shared engine + ``SessionScheduler``: after the first
  request, every bind is a specialization-cache hit and rewrites /
  codegen / lowering are skipped entirely.

Reported per regime: wall-clock, requests/sec, and the per-request
compile overhead (pipeline pass seconds) — the warm path must cut the
cold per-request compile overhead by >= 5x, and concurrent warm results
must be identical to serial execution of the same prepared program.

Run directly (writes JSON when ``REPRO_BENCH_JSON`` is set)::

    PYTHONPATH=src python benchmarks/bench_serving_throughput.py

or via pytest (``REPRO_BENCH_QUICK=1`` trims the grid)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serving_throughput.py
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from repro.bench.harness import BenchResult, maybe_export_json, print_table
from repro.compiler.execution import Engine
from repro.serve import SessionScheduler

QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

ROWS, COLS = (128, 32) if QUICK else (256, 64)
REQUESTS_PER_CLIENT = 4 if QUICK else 8
CLIENT_COUNTS = [1, 8] if QUICK else [1, 4, 8]

SCRIPT = """
input X, w
margin = X %*% w
prob = 1 / (1 + exp(0 - margin))
hinge = max(1 - margin, 0)
"""

_CACHE: dict = {}


def _data():
    if not _CACHE:
        rng = np.random.default_rng(47)
        _CACHE["w"] = rng.random((COLS, 1))
        _CACHE["xs"] = [
            rng.random((ROWS, COLS)) for _ in range(8 * REQUESTS_PER_CLIENT)
        ]
    return _CACHE


def _compile_overhead(engine: Engine) -> float:
    """Total compile-pipeline seconds recorded by an engine."""
    return sum(engine.stats.pipeline_pass_seconds.values())


def run_cold(n_clients: int) -> dict:
    """Every request compiles from scratch (fresh engine + prepared)."""
    data = _data()
    n_requests = n_clients * REQUESTS_PER_CLIENT
    overhead = [0.0] * n_clients

    def client(index):
        for request in range(REQUESTS_PER_CLIENT):
            engine = Engine(mode="gen")
            prepared = engine.prepare_script(SCRIPT, name="score")
            x = data["xs"][index * REQUESTS_PER_CLIENT + request]
            prepared.run({"X": x, "w": data["w"]})
            overhead[index] += _compile_overhead(engine)
            engine.close()

    start = time.perf_counter()
    threads = [threading.Thread(target=client, args=(i,))
               for i in range(n_clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return {
        "seconds": elapsed,
        "requests_per_sec": n_requests / elapsed,
        "compile_overhead_per_request": sum(overhead) / n_requests,
    }


def run_warm(n_clients: int) -> dict:
    """Shared engine + scheduler; requests hit the specialization cache."""
    data = _data()
    n_requests = n_clients * REQUESTS_PER_CLIENT
    engine = Engine(mode="gen")
    prepared = engine.prepare_script(SCRIPT, name="score")
    # Warmup: compile the single (ROWS x COLS) specialization once.
    prepared.run({"X": data["xs"][0], "w": data["w"]})
    overhead_before = _compile_overhead(engine)

    results: dict[int, object] = {}
    with SessionScheduler(engine, n_workers=min(4, n_clients)) as server:
        def client(index):
            tickets = []
            for request in range(REQUESTS_PER_CLIENT):
                x = data["xs"][index * REQUESTS_PER_CLIENT + request]
                tickets.append(
                    (index * REQUESTS_PER_CLIENT + request,
                     server.submit(prepared, {"X": x, "w": data["w"]},
                                   tenant=f"tenant{index % 2}"))
                )
            for key, ticket in tickets:
                results[key] = ticket.result(120)

        start = time.perf_counter()
        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(n_clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        elapsed = time.perf_counter() - start
        summary = server.serving_summary()
    overhead_delta = _compile_overhead(engine) - overhead_before
    engine.close()
    return {
        "seconds": elapsed,
        "requests_per_sec": n_requests / elapsed,
        "compile_overhead_per_request": overhead_delta / n_requests,
        "serving_summary": summary,
        "results": results,
        "prepared": prepared,
    }


def serial_reference(prepared, n_requests: int) -> dict[int, object]:
    """The same requests through the same prepared program, serially."""
    data = _data()
    return {
        index: prepared.run({"X": data["xs"][index], "w": data["w"]})
        for index in range(n_requests)
    }


def run(client_counts=None) -> list[BenchResult]:
    rows = []
    for n_clients in client_counts or CLIENT_COUNTS:
        cold = run_cold(n_clients)
        warm = run_warm(n_clients)
        result = BenchResult(label=f"{n_clients} client(s)")
        result.seconds["cold"] = cold["seconds"]
        result.seconds["warm"] = warm["seconds"]
        result.stats = {
            "cold_rps": cold["requests_per_sec"],
            "warm_rps": warm["requests_per_sec"],
            "cold_compile_per_request": cold["compile_overhead_per_request"],
            "warm_compile_per_request": warm["compile_overhead_per_request"],
            "serving": warm["serving_summary"],
        }
        rows.append(result)
    return rows


@pytest.mark.bench
def test_warm_serving_amortizes_compilation(benchmark):
    """Acceptance: warm serving cuts per-request compile overhead >= 5x
    at 8 concurrent clients, with results identical to serial."""
    data = _data()
    cold = run_cold(8)
    holder = {}

    def measured():
        holder.update(run_warm(8))

    benchmark.pedantic(measured, rounds=1, iterations=1, warmup_rounds=0)
    warm = holder

    reduction = cold["compile_overhead_per_request"] / max(
        warm["compile_overhead_per_request"], 1e-12
    )
    assert reduction >= 5.0, (
        f"warm compile overhead only {reduction:.1f}x below cold"
    )
    # Warm binds never re-entered the compile pipeline.
    assert warm["compile_overhead_per_request"] == 0.0
    assert warm["serving_summary"]["n_specialization_misses"] <= 1

    # Observability acceptance: serving_summary reports real
    # (non-degenerate) latency/queue percentiles per tenant under the
    # mixed-client load — every client submitted as tenant0 or tenant1.
    summary = warm["serving_summary"]
    assert summary["latency_p50"] > 0.0
    assert summary["latency_p99"] >= summary["latency_p50"]
    assert summary["latency_p95"] >= summary["latency_p50"]
    assert summary["queue_p99"] >= summary["queue_p50"] >= 0.0
    per_tenant = summary["per_tenant"]
    assert set(per_tenant) == {"tenant0", "tenant1"}
    for tenant, row in per_tenant.items():
        assert row["n"] > 0, f"{tenant} recorded no requests"
        assert row["latency_p99"] >= row["latency_p50"] > 0.0

    # Concurrent warm results are identical to serial execution.
    reference = serial_reference(warm["prepared"], 8 * REQUESTS_PER_CLIENT)
    assert set(warm["results"]) == set(reference)
    for index, served in warm["results"].items():
        expected = reference[index]
        for name in ("margin", "prob", "hinge"):
            assert np.array_equal(
                served[name].to_dense(), expected[name].to_dense()
            ), f"request {index} output {name} diverged from serial"


def main() -> None:
    results = run()
    print_table("Serving throughput: cold vs warm plan reuse",
                ["cold", "warm"], results)
    print(f"\n{'clients':<12}{'cold rps':>10}{'warm rps':>10}"
          f"{'cold compile/req':>18}{'warm compile/req':>18}")
    for result in results:
        stats = result.stats
        print(f"{result.label:<12}{stats['cold_rps']:>10.1f}"
              f"{stats['warm_rps']:>10.1f}"
              f"{stats['cold_compile_per_request']*1e3:>16.2f}ms"
              f"{stats['warm_compile_per_request']*1e3:>16.2f}ms")
    last = results[-1].stats
    reduction = last["cold_compile_per_request"] / max(
        last["warm_compile_per_request"], 1e-12
    )
    print(f"\nper-request compile overhead reduction (warm vs cold): "
          f">= {min(reduction, 1e6):.0f}x")
    serving = last["serving"]
    print(f"latency p50/p95/p99: {serving['latency_p50']*1e3:.2f}/"
          f"{serving['latency_p95']*1e3:.2f}/"
          f"{serving['latency_p99']*1e3:.2f} ms; "
          f"queue p50/p99: {serving['queue_p50']*1e3:.2f}/"
          f"{serving['queue_p99']*1e3:.2f} ms")
    for tenant, row in sorted(serving["per_tenant"].items()):
        print(f"  {tenant}: n={row['n']} "
              f"p50={row['latency_p50']*1e3:.2f}ms "
              f"p99={row['latency_p99']*1e3:.2f}ms")
    print(f"serving summary: {serving}")
    path = maybe_export_json(
        "serving_throughput", results,
        extra={"rows": ROWS, "cols": COLS,
               "requests_per_client": REQUESTS_PER_CLIENT},
    )
    if path:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
