"""Figure 13: Hybrid algorithms — increasing size of intermediates.

MLogreg over #classes and KMeans over #centroids on dense data
(paper: 1e7 x 100; reproduction: 4e4 x 100).  These algorithms shift
from memory-bandwidth-bound to compute-bound as k grows; intermediates
of size n x k grow with k and penalize Base/Fused more than Gen.
"""

from __future__ import annotations

import pytest

from repro.algorithms import kmeans, mlogreg
from repro.compiler.execution import Engine
from repro.data import generators

MODES = ["base", "fused", "gen", "gen-fa", "gen-fnr"]
_CACHE: dict = {}


def _mlogreg_data(k: int):
    key = ("ml", k)
    if key not in _CACHE:
        _CACHE[key] = generators.classification_data(
            40_000, 100, n_classes=k, seed=70 + k
        )
    return _CACHE[key]


def _kmeans_data():
    if "km" not in _CACHE:
        _CACHE["km"] = generators.clustering_data(40_000, 100, n_centers=8, seed=77)
    return _CACHE["km"]


@pytest.mark.bench
@pytest.mark.parametrize("k", [2, 5, 10])
@pytest.mark.parametrize("mode", MODES)
def test_fig13a_mlogreg_classes(benchmark, k, mode):
    x, labels = _mlogreg_data(k)
    engine = Engine(mode=mode)

    def run():
        return mlogreg(x, labels, k, engine=engine, max_iter=2, max_inner=3)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["n_classes"] = k


@pytest.mark.bench
@pytest.mark.parametrize("k", [5, 10, 20])
@pytest.mark.parametrize("mode", MODES)
def test_fig13b_kmeans_centroids(benchmark, k, mode):
    x = _kmeans_data()
    engine = Engine(mode=mode)

    def run():
        return kmeans(x, n_centroids=k, engine=engine, max_iter=3)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["n_centroids"] = k
