"""Table 4: Runtime of data-intensive algorithms (single node).

Paper: L2SVM / MLogreg / GLM / KMeans on dense 1e6-1e8 x 10 synthetic
data plus Airline78 and Mnist8m; baselines Base / Fused / Gen / Gen-FA /
Gen-FNR.  Reproduction scale: 2e4 and 1e5 x 10 dense (1/1000 of the
paper's largest), airline-like at 3e4 rows, mnist-like at 4e3 rows.
Expected shape: Gen < Gen-FA < Gen-FNR <= Fused < Base, with Gen's
advantage growing with data size (fewer intermediates and scans).
"""

from __future__ import annotations

import pytest

from repro.algorithms import glm_binomial_probit, kmeans, l2svm, mlogreg
from repro.compiler.execution import Engine
from repro.data import generators

MODES = ["base", "fused", "gen", "gen-fa", "gen-fnr"]
_CACHE: dict = {}


def _dataset(name: str):
    if name in _CACHE:
        return _CACHE[name]
    if name == "d20k":
        x, y = generators.classification_data(20_000, 10, n_classes=2, seed=61)
    elif name == "d100k":
        x, y = generators.classification_data(100_000, 10, n_classes=2, seed=62)
    elif name == "airline":
        x = generators.airline_like(rows=30_000, seed=63)
        import numpy as np

        rng = np.random.default_rng(63)
        w = rng.normal(size=(x.cols, 1))
        y_arr = (x.to_dense() @ w > 0).astype(float) * 2 - 1
        from repro.runtime.matrix import MatrixBlock

        y = MatrixBlock(y_arr)
    else:  # mnist
        x = generators.mnist_like(rows=4_000, seed=64)
        import numpy as np

        rng = np.random.default_rng(64)
        y_arr = (x.to_dense().sum(axis=1, keepdims=True) > np.median(
            x.to_dense().sum(axis=1))) * 2.0 - 1.0
        from repro.runtime.matrix import MatrixBlock

        y = MatrixBlock(y_arr)
    _CACHE[name] = (x, y)
    return _CACHE[name]


def _labels_multi(y):
    return ((y.to_dense() + 3) / 2)  # {-1,1} -> {1,2}


ALGOS = {
    "L2SVM": lambda x, y, e: l2svm(x, y, engine=e, max_iter=5),
    "MLogreg": lambda x, y, e: mlogreg(
        x, _labels_multi(y), 2, engine=e, max_iter=3, max_inner=4
    ),
    "GLM": lambda x, y, e: glm_binomial_probit(
        x, (y.to_dense() + 1) / 2, engine=e, max_iter=3, max_inner=4
    ),
    "KMeans": lambda x, y, e: kmeans(x, n_centroids=5, engine=e, max_iter=5),
}

DATASETS = ["d20k", "d100k", "airline", "mnist"]


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algo", list(ALGOS))
@pytest.mark.parametrize("mode", MODES)
def test_table4(benchmark, dataset, algo, mode):
    if dataset in ("d100k", "airline") and algo in ("GLM", "MLogreg") and mode == "base":
        pass  # keep: Base is the interesting slow baseline
    x, y = _dataset(dataset)
    engine = Engine(mode=mode)

    def run():
        return ALGOS[algo](x, y, engine)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset


@pytest.mark.bench
@pytest.mark.parametrize("algo", ["L2SVM", "KMeans"])
def test_table4_shape_gen_beats_base(benchmark, algo):
    """Gen must beat Base end-to-end on the larger dense dataset."""
    from repro.bench.harness import time_once

    def run():
        x, y = _dataset("d100k")
        base_s = time_once(lambda: ALGOS[algo](x, y, Engine(mode="base")))
        gen_engine = Engine(mode="gen")
        ALGOS[algo](x, y, gen_engine)  # warm plan cache
        gen_s = time_once(lambda: ALGOS[algo](x, y, gen_engine))
        assert gen_s < base_s
        benchmark.extra_info["base_s"] = round(base_s, 3)
        benchmark.extra_info["gen_s"] = round(gen_s, 3)

    benchmark.pedantic(run, rounds=1, iterations=1)
