"""Table 6: Runtime of distributed algorithms (simulated cluster).

Substitution: the simulated Spark backend executes operators partition-
wise on one machine and charges analytical network/IO costs (broadcast,
shuffle, distributed reads) as *simulated seconds*; the reported metric
is measured compute + simulated network time.  The driver memory budget
is scaled down so the scaled datasets exceed it, forcing distributed
operators exactly like the paper's 160-200 GB inputs exceed the 35 GB
driver.

Expected shape (the paper's key distributed finding): the fuse-all
heuristic eagerly fuses driver-side vector operations into distributed
operators, broadcasting large vector side-inputs to all workers — so
Gen-FA can be *slower than Base/Fused*, while cost-based Gen reasons
about template switches and broadcast costs and wins.
"""

from __future__ import annotations

import time

import pytest

from conftest import QUICK, quick_trim

from repro import api
from repro.algorithms import glm_binomial_probit, kmeans, l2svm, mlogreg
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.data import generators

MODES = ["base", "fused", "gen", "gen-fa", "gen-fnr"]
_CACHE: dict = {}

# 2e5 x 10 dense is 16 MB; an 8 MB driver budget forces SPARK operators
# for anything touching X (1/4000 of the paper's 35 GB / 160 GB setup).
_DRIVER_BUDGET = 8e6


def _config() -> CodegenConfig:
    # Aggregate executor memory scaled by the same factor as the driver
    # budget (the paper: 216 GB aggregate for 160 GB inputs).
    return CodegenConfig(
        cluster=ClusterConfig(n_workers=6, executor_mem=10e6),
        local_mem_budget=_DRIVER_BUDGET,
    )


def _dataset(name: str):
    if name in _CACHE:
        return _CACHE[name]
    if name == "D200k":
        x, y = generators.classification_data(200_000, 10, n_classes=2, seed=91)
    elif name == "S200k":
        x, y = generators.classification_data(
            200_000, 100, n_classes=2, seed=92, sparsity=0.05
        )
    else:  # mnist-like
        x = generators.mnist_like(rows=20_000, seed=93)
        import numpy as np

        from repro.runtime.matrix import MatrixBlock

        sums = x.to_dense().sum(axis=1, keepdims=True)
        y = MatrixBlock((sums > np.median(sums)) * 2.0 - 1.0)
    _CACHE[name] = (x, y)
    return _CACHE[name]


ALGOS = {
    "L2SVM": lambda x, y, e: l2svm(x, y, engine=e, max_iter=3),
    "MLogreg": lambda x, y, e: mlogreg(
        x, (y.to_dense() + 3) / 2, 2, engine=e, max_iter=2, max_inner=3
    ),
    "GLM": lambda x, y, e: glm_binomial_probit(
        x, (y.to_dense() + 1) / 2, engine=e, max_iter=2, max_inner=3
    ),
    "KMeans": lambda x, y, e: kmeans(x, n_centroids=5, engine=e, max_iter=3),
}

#: Quick mode trims the dataset/algorithm grids (sizes stay unchanged,
#: so the distributed path is still forced past the driver budget).
DATASETS = quick_trim(["D200k", "S200k", "Mnist20k"])
TABLE6_ALGOS = quick_trim(["L2SVM", "KMeans"])
ADDITIONAL_ALGOS = quick_trim(["MLogreg", "GLM"])


@pytest.mark.bench
@pytest.mark.parametrize("dataset", DATASETS)
@pytest.mark.parametrize("algo", TABLE6_ALGOS)
@pytest.mark.parametrize("mode", MODES)
def test_table6(benchmark, dataset, algo, mode):
    x, y = _dataset(dataset)
    holder = {}

    def run():
        engine = Engine(mode=mode, config=_config())
        ALGOS[algo](x, y, engine)
        holder["stats"] = engine.stats

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = holder["stats"]
    benchmark.extra_info.update(
        {
            "dataset": dataset,
            "sim_seconds": round(stats.sim_seconds, 3),
            "sim_broadcast_mb": round(stats.sim_broadcast_bytes / 1e6, 1),
            "n_distributed_ops": stats.n_distributed_ops,
            "n_blocked_passthrough": stats.n_blocked_passthrough,
            "n_collects": stats.n_collects,
        }
    )


@pytest.mark.bench
@pytest.mark.parametrize("algo", ADDITIONAL_ALGOS)
@pytest.mark.parametrize("mode", ["base", "fused", "gen", "gen-fa"])
def test_table6_additional_algos(benchmark, algo, mode):
    x, y = _dataset("D200k")
    holder = {}

    def run():
        engine = Engine(mode=mode, config=_config())
        ALGOS[algo](x, y, engine)
        holder["stats"] = engine.stats

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["sim_seconds"] = round(holder["stats"].sim_seconds, 3)


@pytest.mark.bench
def test_table6_fa_broadcast_penalty(benchmark):
    """The key Table 6 claim: eager fuse-all drags driver-side vector
    operations into distributed operators and pays broadcast overhead.

    At reproduction scale, Python wall-clock dwarfs the modeled network
    time, so the claim is asserted on the *simulated* network component
    — the quantity that dominates at the paper's 160 GB scale.
    """

    def run():
        x, y = _dataset("D200k")
        sim = {}
        broadcast = {}
        for mode in ("gen", "gen-fa"):
            engine = Engine(mode=mode, config=_config())
            ALGOS["L2SVM"](x, y, engine)
            sim[mode] = engine.stats.sim_seconds
            broadcast[mode] = engine.stats.sim_broadcast_bytes
        assert broadcast["gen-fa"] >= broadcast["gen"]
        assert sim["gen"] <= sim["gen-fa"]
        benchmark.extra_info["gen_sim_s"] = round(sim["gen"], 3)
        benchmark.extra_info["fa_sim_s"] = round(sim["gen-fa"], 3)
        benchmark.extra_info["fa_broadcast_mb"] = round(broadcast["gen-fa"] / 1e6, 1)
        benchmark.extra_info["gen_broadcast_mb"] = round(broadcast["gen"] / 1e6, 1)

    benchmark.pedantic(run, rounds=1, iterations=1)


# ----------------------------------------------------------------------
# Real parallelism: the multiprocess backend scales past one GIL
# ----------------------------------------------------------------------
#: Compute-bound fused operator: sigmoid+exp cellwise chain over a
#: large dense X, fully aggregated to a scalar — partition partials are
#: 8 bytes, so wall-clock is dominated by per-cell compute, the regime
#: where process parallelism must pay off.
_PAR_ROWS = 200_000 if QUICK else 1_200_000
_PAR_COLS = 16
_PAR_ITERS = 3
_PAR_WORKERS = 4


def _parallel_config(backend: str) -> CodegenConfig:
    return CodegenConfig(
        cluster=ClusterConfig(n_workers=_PAR_WORKERS, executor_mem=1e9),
        local_mem_budget=_DRIVER_BUDGET,
        distributed_backend=backend,
        mp_workers=_PAR_WORKERS,
    )


@pytest.mark.bench
def test_real_parallelism_speedup(benchmark):
    """`distributed_backend=multiprocess` must beat the simulated
    (in-process, GIL-bound) backend by >1.5x wall-clock at 4 workers on
    a compute-bound fused operator — the tentpole claim of the real
    distributed backend."""
    import numpy as np

    from repro.runtime.matrix import MatrixBlock

    rng = np.random.default_rng(17)
    x_block = MatrixBlock(rng.random((_PAR_ROWS, _PAR_COLS)))

    def expr():
        x = api.matrix(x_block, "X")
        return (api.sigmoid(x * 1.5 + 0.25) * api.exp(x * -0.5)).sum()

    def timed(backend):
        engine = Engine(mode="gen", config=_parallel_config(backend))
        warm = api.eval(expr(), engine=engine)  # compile + pool spawn
        start = time.perf_counter()
        values = [api.eval(expr(), engine=engine) for _ in range(_PAR_ITERS)]
        wall = time.perf_counter() - start
        return warm, values, wall, engine.stats

    def run():
        import os

        sim_warm, sim_vals, sim_wall, _ = timed("simulated")
        mp_warm, mp_vals, mp_wall, mp_stats = timed("multiprocess")
        assert mp_warm == sim_warm and mp_vals == sim_vals
        speedup = sim_wall / mp_wall
        summary = mp_stats.distributed_backend_summary()
        benchmark.extra_info.update(
            {
                "rows": _PAR_ROWS,
                "workers": _PAR_WORKERS,
                "cpus": os.cpu_count(),
                "sim_wall_s": round(sim_wall, 3),
                "mp_wall_s": round(mp_wall, 3),
                "speedup": round(speedup, 2),
                "mp_shm_mb": summary["mp_shm_mb"],
                "mp_locality_hits": summary["n_mp_locality_hits"],
            }
        )
        if (os.cpu_count() or 1) < 2:
            pytest.skip(
                "single-CPU host: worker processes cannot run "
                f"concurrently (measured {speedup:.2f}x)"
            )
        assert speedup > 1.5, (
            f"multiprocess speedup {speedup:.2f}x at {_PAR_WORKERS} "
            f"workers (sim {sim_wall:.3f}s vs mp {mp_wall:.3f}s)"
        )

    benchmark.pedantic(run, rounds=1, iterations=1)
