"""Figure 8(h): Outer-product operations — sum(X ⊙ log(UVᵀ + 1e-15)).

The paper fixes X at 4e8 cells (2e4 x 2e4), rank 100, and sweeps the
sparsity of X over {1, 0.1, 0.01, 0.001, 0.0001}.  Reproduction scale:
2e3 x 2e3 (4e6 cells), rank 100.  Expected shape: Base (and eager
NumPy) stay roughly constant — they always materialize the dense UVᵀ —
while Fused (wcemm) and Gen improve proportionally to the sparsity,
by orders of magnitude at sp = 1e-4.
"""

from __future__ import annotations

import pytest

from conftest import quick_trim

from repro import api
from repro.compiler.execution import Engine
from repro.runtime.matrix import MatrixBlock

ROWS = COLS = 2000
RANK = 100
SPARSITIES = quick_trim([1.0, 0.1, 0.01, 0.001, 0.0001])
MODES = ["numpy", "base", "fused", "gen"]
_CACHE: dict = {}


def _inputs(sparsity: float):
    if sparsity not in _CACHE:
        x = MatrixBlock.rand(ROWS, COLS, sparsity=sparsity, seed=11, low=0.1, high=1.0)
        u = MatrixBlock.rand(ROWS, RANK, seed=12, low=0.1, high=1.0)
        v = MatrixBlock.rand(COLS, RANK, seed=13, low=0.1, high=1.0)
        _CACHE[sparsity] = (x, u, v)
    return _CACHE[sparsity]


def _build(blocks):
    x, u, v = blocks
    xm, um, vm = api.matrix(x, "X"), api.matrix(u, "U"), api.matrix(v, "V")
    return [(xm * api.log(um @ vm.T + 1e-15)).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("sparsity", SPARSITIES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08h_outer_sparsity_sweep(benchmark, sparsity, mode):
    blocks = _inputs(sparsity)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=2, iterations=1)
    benchmark.extra_info["sparsity"] = sparsity


@pytest.mark.bench
def test_fig08h_gen_exploits_sparsity(benchmark):
    """Gen at sp=1e-3 must beat Base by at least an order of magnitude,
    and the fused operator must be an Outer template."""

    def run():
        from repro.bench.harness import run_modes

        blocks = _inputs(0.001)
        engine = Engine(mode="gen")
        api.eval_all(_build(blocks), engine=engine)
        assert engine.stats.spoof_executions.get("Outer", 0) == 1

        seconds = run_modes(lambda: _build(blocks), ["base", "gen"], repeats=2)
        assert seconds["gen"] * 5 < seconds["base"]

    benchmark.pedantic(run, rounds=1, iterations=1)
