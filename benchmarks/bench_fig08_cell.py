"""Figure 8(a,b): Cell operations — sum(X ⊙ Y ⊙ Z), dense and sparse.

Paper setup: inputs of x * 10^3 cells, x in {1e3..1e6} (up to 1G cells),
sparse inputs at sparsity 0.1.  Reproduction scale: up to 4M cells per
input (1/250 of the paper's largest), single-threaded NumPy kernels.
Expected shape: Fused and Gen beat Base by an order of magnitude at
large sizes (no materialized intermediates); the eager-NumPy reference
(standing in for Julia) tracks Base.
"""

from __future__ import annotations

import pytest

from conftest import quick_trim

from repro import api
from repro.bench.harness import run_modes
from repro.compiler.execution import Engine
from repro.runtime.matrix import MatrixBlock

MODES = ["numpy", "base", "fused", "gen"]
SIZES = quick_trim([100_000, 1_000_000, 4_000_000])
_CACHE: dict = {}


def _dense_inputs(cells: int):
    key = ("dense", cells)
    if key not in _CACHE:
        rows = cells // 1000
        _CACHE[key] = tuple(
            MatrixBlock.rand(rows, 1000, seed=seed) for seed in (1, 2, 3)
        )
    return _CACHE[key]


def _sparse_inputs(cells: int):
    key = ("sparse", cells)
    if key not in _CACHE:
        rows = cells // 1000
        _CACHE[key] = tuple(
            MatrixBlock.rand(rows, 1000, sparsity=0.1, seed=seed, low=0.1, high=1.0)
            for seed in (1, 2, 3)
        )
    return _CACHE[key]


def _build(blocks):
    x, y, z = (api.matrix(b, n) for b, n in zip(blocks, "XYZ"))
    return [(x * y * z).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08a_cell_dense(benchmark, cells, mode):
    blocks = _dense_inputs(cells)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()  # warmup: codegen + plan cache
    result = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells
    assert result[0] == pytest.approx(result[0])


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", ["numpy", "base", "fused", "gen"])
def test_fig08b_cell_sparse(benchmark, cells, mode):
    blocks = _sparse_inputs(cells)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["sparsity"] = 0.1


@pytest.mark.bench
def test_fig08_cell_shape_summary(benchmark):
    """The paper's qualitative claim: Gen >= Fused > Base at scale."""

    def run():
        blocks = _dense_inputs(1_000_000)
        seconds = run_modes(lambda: _build(blocks), ["base", "fused", "gen"], repeats=3)
        assert seconds["gen"] < seconds["base"]
        assert seconds["fused"] < seconds["base"]

    benchmark.pedantic(run, rounds=1, iterations=1)
