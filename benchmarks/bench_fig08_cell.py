"""Figure 8(a,b): Cell operations — sum(X ⊙ Y ⊙ Z), dense and sparse.

Paper setup: inputs of x * 10^3 cells, x in {1e3..1e6} (up to 1G cells),
sparse inputs at sparsity 0.1.  Reproduction scale: up to 4M cells per
input (1/250 of the paper's largest), single-threaded NumPy kernels.
Expected shape: Fused and Gen beat Base by an order of magnitude at
large sizes (no materialized intermediates); the eager-NumPy reference
(standing in for Julia) tracks Base.
"""

from __future__ import annotations

import os
import time

import pytest

from conftest import quick_trim

from repro import api
from repro.bench.harness import (
    BenchResult,
    maybe_export_json,
    phase_summary,
    print_table,
    run_modes,
    time_best,
)
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

MODES = ["numpy", "base", "fused", "gen"]
SIZES = quick_trim([100_000, 1_000_000, 4_000_000])
_CACHE: dict = {}


def _dense_inputs(cells: int):
    key = ("dense", cells)
    if key not in _CACHE:
        rows = cells // 1000
        _CACHE[key] = tuple(
            MatrixBlock.rand(rows, 1000, seed=seed) for seed in (1, 2, 3)
        )
    return _CACHE[key]


def _sparse_inputs(cells: int):
    key = ("sparse", cells)
    if key not in _CACHE:
        rows = cells // 1000
        _CACHE[key] = tuple(
            MatrixBlock.rand(rows, 1000, sparsity=0.1, seed=seed, low=0.1, high=1.0)
            for seed in (1, 2, 3)
        )
    return _CACHE[key]


def _build(blocks):
    x, y, z = (api.matrix(b, n) for b, n in zip(blocks, "XYZ"))
    return [(x * y * z).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08a_cell_dense(benchmark, cells, mode):
    blocks = _dense_inputs(cells)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()  # warmup: codegen + plan cache
    result = benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells
    assert result[0] == pytest.approx(result[0])


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", ["numpy", "base", "fused", "gen"])
def test_fig08b_cell_sparse(benchmark, cells, mode):
    blocks = _sparse_inputs(cells)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells
    benchmark.extra_info["sparsity"] = 0.1


def _time_tiers(build, rtol: float):
    """Time the gen engine's interpreted vs compiled kernel tiers.

    Returns ``(seconds, summaries)`` keyed by tier, after asserting
    both tiers produce the same scalar result within the configured
    comparison tolerance (whole-array kernels reassociate sums).
    """
    seconds, summaries, values = {}, {}, {}
    for tier, vectorized in (("interpreted", False), ("compiled", True)):
        config = CodegenConfig(vectorized_kernels=vectorized)
        engine = Engine(mode="gen", config=config)

        def evaluate():
            return api.eval_all(build(), engine=engine)

        values[tier] = float(evaluate()[0])  # warmup: codegen + kernels
        seconds[tier] = time_best(evaluate, 3)
        summaries[tier] = engine.stats.kernel_summary()
    assert values["compiled"] == pytest.approx(
        values["interpreted"], rel=rtol
    )
    assert summaries["interpreted"]["n_compiled_runs"] == 0
    assert summaries["compiled"]["n_interpreted_runs"] == 0
    return seconds, summaries


@pytest.mark.bench
def test_fig08_cell_tier_speedup(benchmark):
    """Compiled vectorized kernels vs interpreted tile loops.

    The einsum cell kernel contracts sum(X*Y*Z) in one pass; the
    interpreted tier dispatches one primitive call per tile.  The
    asserted floor is deliberately loose — end-to-end timings include
    compiler overhead, and at the quick 100K-cell size the kernel win
    shrinks to ~1.3x — while the JSON artifact records the measured
    timings of both tiers (kernel-only microbenchmarks reach ~3.5x at
    4M cells where the tile loop is bandwidth-bound).
    """
    rtol = CodegenConfig().kernel_compare_rtol

    def run():
        results = []
        floors = {}
        for cells in SIZES:
            blocks = _dense_inputs(cells)
            seconds, summaries = _time_tiers(lambda: _build(blocks), rtol)
            result = BenchResult(f"cell_dense_{cells}", seconds=seconds,
                                 stats=summaries)
            results.append(result)
            speedup = result.speedup("interpreted", "compiled")
            floors[f"cell_dense_{cells}"] = speedup
            assert speedup > 1.1, (
                f"compiled cell kernel slower than expected at {cells} "
                f"cells: {speedup:.2f}x"
            )
        print_table("Fig 8 cell: kernel tiers",
                    ["interpreted", "compiled"], results)
        print("speedups:", {k: f"{v:.2f}x" for k, v in floors.items()})
        maybe_export_json("fig08_cell_tiers", results,
                          extra={"speedup_compiled": floors})

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
def test_fig08_verify_overhead(benchmark):
    """``verify_level="boundaries"`` stays under 10% end-to-end.

    Each evaluate builds a fresh DAG and runs the full compile pipeline
    (the plan cache only absorbs operator compilation), so the measured
    ratio covers exactly what the verifier adds per compile+run: one
    post-optimization DAG check plus one post-lowering program check.

    The size is pinned at 1M cells even in quick mode — at the trimmed
    100K size one evaluate is ~1.5ms and a 10% bound is scheduler
    noise, not verifier cost — and the two levels are timed
    *interleaved* so clock drift hits both equally.
    """
    cells = 1_000_000
    blocks = _dense_inputs(cells)

    def run():
        engines = {
            level: Engine(
                mode="gen", config=CodegenConfig(verify_level=level)
            )
            for level in ("off", "boundaries")
        }

        def evaluate(level):
            return api.eval_all(_build(blocks), engine=engines[level])

        seconds = {level: float("inf") for level in engines}
        for level in engines:
            evaluate(level)  # warmup: codegen + plan cache
        for _ in range(7):
            for level in engines:
                seconds[level] = min(
                    seconds[level], time_best(lambda: evaluate(level), 1)
                )
        ratio = seconds["boundaries"] / seconds["off"]
        result = BenchResult(f"cell_dense_{cells}_verify", seconds=seconds)
        print_table("Fig 8 cell: verifier overhead",
                    ["off", "boundaries"], [result])
        print(f"verify overhead: {ratio:.3f}x")
        maybe_export_json("fig08_cell_verify_overhead", [result],
                          extra={"overhead_ratio": ratio})
        assert ratio < 1.10, (
            f"boundaries verification adds {(ratio - 1) * 100:.1f}% "
            "to compile+run (budget: 10%)"
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
def test_fig08_trace_overhead(benchmark):
    """Tracing overhead bounds at 1M cells (repro.obs acceptance).

    ``trace_level="instructions"`` must add <5% to compile+run, timed
    interleaved against an ``off`` engine (same discipline as the
    verifier-overhead bench: pinned 1M cells, min-of-7 rounds, so clock
    drift hits both engines equally).

    The ``off`` bound (<1%) is not measurable as off-vs-off wall time —
    at ~ms scale two identical engines differ by scheduler noise alone
    — so it is operationalized as a microbenchmark of the exact hook
    the off level pays: one ``tracer.enabled()`` call per instruction
    plus one no-op span per request/compile.  That per-run hook cost,
    divided by the measured off runtime, must stay under 1%.
    """
    cells = 1_000_000
    blocks = _dense_inputs(cells)

    def run():
        engines = {
            level: Engine(
                mode="gen", config=CodegenConfig(trace_level=level)
            )
            for level in ("off", "instructions", "full")
        }

        def evaluate(level):
            return api.eval_all(_build(blocks), engine=engines[level])

        seconds = {level: float("inf") for level in engines}
        for level in engines:
            evaluate(level)  # warmup: codegen + plan cache
        for _ in range(7):
            for level in engines:
                seconds[level] = min(
                    seconds[level], time_best(lambda: evaluate(level), 1)
                )
        ratio = seconds["instructions"] / seconds["off"]

        # Null-hook microbenchmark: the off level's entire per-run cost
        # is NULL_TRACER method calls.  Bound hooks-per-run generously
        # (spans + enabled checks + instants) and scale by call cost.
        program = engines["off"].compile(
            [expr.hop for expr in _build(blocks)]
        )
        hooks_per_run = 4 * program.n_instructions + 16
        tracer = engines["off"].tracer
        reps = 100_000
        start = time.perf_counter()
        for _ in range(reps):
            tracer.enabled(2)
        hook_seconds = (time.perf_counter() - start) / reps
        off_overhead = (hook_seconds * hooks_per_run) / seconds["off"]

        result = BenchResult(f"cell_dense_{cells}_trace",
                             seconds=dict(seconds),
                             phases={"full": phase_summary(engines["full"])})
        print_table("Fig 8 cell: trace overhead",
                    ["off", "instructions", "full"], [result])
        print(f"instructions overhead: {ratio:.3f}x; "
              f"off hook overhead: {off_overhead * 100:.4f}%")
        trace_path = os.environ.get("REPRO_TRACE_JSON")
        if trace_path:
            engines["full"].export_trace(trace_path)
            print(f"full trace exported to {trace_path}")
        maybe_export_json("fig08_cell_trace_overhead", [result],
                          extra={"overhead_ratio_instructions": ratio,
                                 "overhead_fraction_off": off_overhead})
        assert ratio < 1.05, (
            f"instructions tracing adds {(ratio - 1) * 100:.1f}% "
            "to compile+run (budget: 5%)"
        )
        assert off_overhead < 0.01, (
            f"off-level hook cost is {off_overhead * 100:.2f}% of the "
            "off runtime (budget: 1%)"
        )

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
def test_fig08_cell_shape_summary(benchmark):
    """The paper's qualitative claim: Gen >= Fused > Base at scale."""

    def run():
        blocks = _dense_inputs(1_000_000)
        seconds = run_modes(lambda: _build(blocks), ["base", "fused", "gen"], repeats=3)
        assert seconds["gen"] < seconds["base"]
        assert seconds["fused"] < seconds["base"]

    benchmark.pedantic(run, rounds=1, iterations=1)
