"""Figure 10: Impact of the instruction footprint of generated code.

Workload: sum(f(X / rowSums(X))) where f is a chain of n row operations
X ⊙ i, X dense (paper: 1e5 x 1e3; here 2e4 x 1e3).  "Gen" calls the
shared vector-primitive library; "Gen inlined" expands the chain into
monolithic per-element code.

Substitution note: the paper's cliffs come from the JVM's 8KB JIT
threshold and the L1 instruction cache; CPython has neither, so the
inlined configuration degrades through interpretation overhead of
monolithic generated code instead.  The *measured claim* — shared
compact primitives keep performance flat in the chain length, inlined
monolithic code does not — is preserved; absolute cliff locations are
not comparable (documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

N_OPS = [1, 4, 8, 16, 32]
_CACHE: dict = {}


def _x():
    # Paper: 1e5 x 1e3 (800 MB); reproduction: 4e3 x 400 so that the
    # deliberately slow inlined configuration stays benchmarkable.
    if "x" not in _CACHE:
        _CACHE["x"] = MatrixBlock.rand(4_000, 400, seed=21, low=0.5, high=1.5)
    return _CACHE["x"]


def _rowsums():
    if "r" not in _CACHE:
        x = api.matrix(_x(), "X")
        (_CACHE["r"],) = api.eval_all([x.row_sums()], engine=Engine(mode="base"))
    return _CACHE["r"]


def _build(n_ops: int):
    x = api.matrix(_x(), "X")
    r = api.matrix(_rowsums(), "r")
    f = x / r
    for i in range(n_ops):
        f = f * float(i + 1)
    return [f.sum()]


def _engine(inline: bool) -> Engine:
    config = CodegenConfig(inline_primitives=inline)
    return Engine(mode="gen", config=config)


@pytest.mark.bench
@pytest.mark.parametrize("n_ops", N_OPS)
def test_fig10_gen_primitives(benchmark, n_ops):
    engine = _engine(inline=False)

    def evaluate():
        return api.eval_all(_build(n_ops), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=2, iterations=1)
    benchmark.extra_info["n_row_ops"] = n_ops
    benchmark.extra_info["variant"] = "Gen"


@pytest.mark.bench
@pytest.mark.parametrize("n_ops", [1, 4, 8])
def test_fig10_gen_inlined(benchmark, n_ops):
    """Inlined variant at small n only — it degrades by design."""
    engine = _engine(inline=True)

    def evaluate():
        return api.eval_all(_build(n_ops), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=1, iterations=1)
    benchmark.extra_info["n_row_ops"] = n_ops
    benchmark.extra_info["variant"] = "Gen inlined"


@pytest.mark.bench
def test_fig10_inlined_slower_and_growing(benchmark):
    """Qualitative shape: Gen stays flat; inlined is far slower (it
    loses the optimized shared primitives)."""
    import numpy as np

    from repro.bench.harness import time_best

    def run():
        gen_times, inl_times = [], []
        for n_ops in (1, 4):
            eng = _engine(False)
            evaluate = lambda e=eng, n=n_ops: api.eval_all(_build(n), engine=e)
            evaluate()
            gen_times.append(time_best(evaluate, 2))
            eng_i = _engine(True)
            evaluate_i = lambda e=eng_i, n=n_ops: api.eval_all(_build(n), engine=e)
            expected = evaluate()[0]
            got = evaluate_i()[0]
            assert np.isclose(got, expected, rtol=1e-9)
            inl_times.append(time_best(evaluate_i, 1))
        assert min(inl_times) > 3 * max(gen_times)

    benchmark.pedantic(run, rounds=1, iterations=1)
