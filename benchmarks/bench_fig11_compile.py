"""Figure 11: Java class compilation and loading — janino vs javac,
with and without the plan cache.

Substitution: the fast in-memory ``exec`` backend stands in for janino
and the heavyweight write-to-disk + byte-compile + import backend for
javac.  Measured per algorithm: total operator-compilation time under
the four configurations.  Expected shape: the fast backend wins by an
order of magnitude or more, and the plan cache removes most
compilations for algorithms with dynamic recompilation.
"""

from __future__ import annotations

import pytest

from repro.algorithms import kmeans, l2svm, mlogreg
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.data import generators

_CACHE: dict = {}


def _data():
    if not _CACHE:
        x, y = generators.classification_data(2000, 40, n_classes=2, seed=41)
        _CACHE["x"], _CACHE["y"] = x, y
        xm, labels = generators.classification_data(2000, 40, n_classes=4, seed=42)
        _CACHE["xm"], _CACHE["labels"] = xm, labels
    return _CACHE


ALGOS = {
    "L2SVM": lambda d, e: l2svm(d["x"], d["y"], engine=e, max_iter=6),
    "MLogreg": lambda d, e: mlogreg(d["xm"], d["labels"], 4, engine=e,
                                    max_iter=3, max_inner=4),
    "KMeans": lambda d, e: kmeans(d["x"], n_centroids=4, engine=e, max_iter=6),
}

CONFIGS = {
    "janino-cache": dict(compiler="exec", plan_cache_enabled=True),
    "janino-nocache": dict(compiler="exec", plan_cache_enabled=False),
    "javac-cache": dict(compiler="file", plan_cache_enabled=True),
    "javac-nocache": dict(compiler="file", plan_cache_enabled=False),
}


@pytest.mark.bench
@pytest.mark.parametrize("algo", list(ALGOS))
@pytest.mark.parametrize("config_name", list(CONFIGS))
def test_fig11_compile_configs(benchmark, algo, config_name):
    data = _data()
    holder = {}

    def run():
        config = CodegenConfig(**CONFIGS[config_name])
        engine = Engine(mode="gen", config=config)
        ALGOS[algo](data, engine)
        holder["stats"] = engine.stats

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = holder["stats"]
    benchmark.extra_info.update(
        {
            "class_compile_ms": round(stats.class_compile_seconds * 1e3, 2),
            "n_classes": stats.n_classes_compiled,
            "cache_hits": stats.plan_cache_hits,
        }
    )


@pytest.mark.bench
def test_fig11_shapes(benchmark):
    """Fast backend beats the file backend; the cache cuts compiles."""

    def run():
        data = _data()

        def compile_seconds(**kwargs):
            engine = Engine(mode="gen", config=CodegenConfig(**kwargs))
            ALGOS["L2SVM"](data, engine)
            return engine.stats

        fast_nc = compile_seconds(compiler="exec", plan_cache_enabled=False)
        slow_nc = compile_seconds(compiler="file", plan_cache_enabled=False)
        fast_c = compile_seconds(compiler="exec", plan_cache_enabled=True)

        assert slow_nc.class_compile_seconds > 3 * fast_nc.class_compile_seconds
        assert fast_c.n_classes_compiled < fast_nc.n_classes_compiled
        benchmark.extra_info["janino_ms"] = round(fast_nc.class_compile_seconds * 1e3, 2)
        benchmark.extra_info["javac_ms"] = round(slow_nc.class_compile_seconds * 1e3, 2)

    benchmark.pedantic(run, rounds=1, iterations=1)
