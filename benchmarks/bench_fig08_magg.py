"""Figure 8(c,d): Multi-aggregate operations — sum(X⊙Y), sum(X⊙Z).

The two aggregates share input X, qualifying as a single multi-
aggregate operator.  Expected shape: hand-coded Fused (and the FA/FNR
heuristics) apply to each sum individually and read X twice; Gen
compiles one MAgg operator with a 2x1 output and reads X once.
"""

from __future__ import annotations

import pytest

from conftest import quick_trim

from repro import api
from repro.bench.harness import run_modes
from repro.compiler.execution import Engine
from repro.runtime.matrix import MatrixBlock

MODES = ["numpy", "base", "fused", "gen-fa", "gen"]
SIZES = quick_trim([100_000, 1_000_000, 4_000_000])
_CACHE: dict = {}


def _inputs(cells: int, sparse: bool):
    key = (cells, sparse)
    if key not in _CACHE:
        rows = cells // 1000
        if sparse:
            _CACHE[key] = tuple(
                MatrixBlock.rand(rows, 1000, sparsity=0.1, seed=s, low=0.1, high=1.0)
                for s in (4, 5, 6)
            )
        else:
            _CACHE[key] = tuple(MatrixBlock.rand(rows, 1000, seed=s) for s in (4, 5, 6))
    return _CACHE[key]


def _build(blocks):
    x, y, z = (api.matrix(b, n) for b, n in zip(blocks, "XYZ"))
    return [(x * y).sum(), (x * z).sum()]


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08c_magg_dense(benchmark, cells, mode):
    blocks = _inputs(cells, sparse=False)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08d_magg_sparse(benchmark, cells, mode):
    blocks = _inputs(cells, sparse=True)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(blocks), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells


@pytest.mark.bench
def test_fig08_magg_compiles_multi_aggregate(benchmark):
    """Gen must compile one MAgg operator; FA must not (paper text)."""

    def run():
        blocks = _inputs(100_000, sparse=False)
        gen = Engine(mode="gen")
        api.eval_all(_build(blocks), engine=gen)
        assert gen.stats.spoof_executions.get("MAgg", 0) == 1

        fa = Engine(mode="gen-fa")
        api.eval_all(_build(blocks), engine=fa)
        assert fa.stats.spoof_executions.get("MAgg", 0) == 0

    benchmark.pedantic(run, rounds=1, iterations=1)
