"""Adaptive recompilation: sparse workloads under unknown metadata.

A program is compiled over an input whose nnz is *unknown* at compile
time (``api.matrix(..., nnz_unknown=True)``), so every estimate assumes
dense.  The estimate-frozen configuration (``adaptive_recompile=False``)
executes that dense plan as compiled; the adaptive configuration
observes the actual sparsity at the first recompilation segment
boundary, recompiles the program remainder to a sparse (and, under
``gen``, fused sparse-safe) plan, and keeps the data CSR end-to-end.

Asserted per the acceptance criteria: on a <= 1%-dense input the
adaptive run is faster than the frozen run, ``n_recompiles > 0``, and
the results are bit-identical to the serial dense path.

Run directly (writes JSON when ``REPRO_BENCH_JSON`` is set)::

    PYTHONPATH=src python benchmarks/bench_recompile_adaptive.py

or via pytest: ``pytest benchmarks/bench_recompile_adaptive.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import api
from repro.bench.harness import (
    BenchResult,
    maybe_export_json,
    print_table,
    time_best,
)
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

try:
    from conftest import QUICK
except ImportError:  # direct `python benchmarks/...` invocation
    QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"

ROWS, COLS = (1_000, 800) if QUICK else (6_000, 4_000)
DENSITY = 0.005  # 0.5% non-zeros: well under the acceptance's 1% bar
MODES = ["base", "gen"]
_CACHE: dict = {}


def _data() -> MatrixBlock:
    if not _CACHE:
        rng = np.random.default_rng(29)
        arr = np.zeros((ROWS, COLS))
        mask = rng.random((ROWS, COLS)) < DENSITY
        arr[mask] = rng.random(int(mask.sum())) + 0.5
        # Dense-stored on purpose: the frozen plan never discovers the
        # sparsity, the adaptive plan reformats at the segment boundary.
        _CACHE["X"] = MatrixBlock(arr)
    return _CACHE["X"]


def _build():
    x = api.matrix(_data(), name="X", nnz_unknown=True)
    return [(x * 3.0) * api.abs_(x) * 0.5]


def _engine(mode: str, adaptive: bool) -> Engine:
    return Engine(mode=mode,
                  config=CodegenConfig(adaptive_recompile=adaptive))


def run(repeats: int = 3):
    results = []
    summaries: dict = {}
    for mode in MODES:
        result = BenchResult(label=f"{mode} ({ROWS}x{COLS} @ {DENSITY:.1%})")
        outputs = {}
        for label, adaptive in (("frozen", False), ("adaptive", True)):
            engine = _engine(mode, adaptive)

            def evaluate():
                return api.eval_all(_build(), engine=engine)

            outputs[label] = evaluate()[0]  # warmup: compile (+ codegen)
            result.seconds[label] = time_best(evaluate, repeats)
            result.stats[label] = engine.stats.adaptive_summary()
            if adaptive:
                assert engine.stats.n_recompiles > 0, (
                    "adaptive run never recompiled"
                )
        # Bit-identical vs the serial dense (estimate-frozen) path:
        # sparse-safe cell ops apply identical float ops per non-zero.
        assert np.array_equal(
            outputs["adaptive"].to_dense(), outputs["frozen"].to_dense()
        ), "adaptive result differs from the dense path"
        summaries[result.label] = result.stats["adaptive"]
        results.append(result)
    return results, summaries


def _assert_speedup(results) -> None:
    for result in results:
        assert result.seconds["adaptive"] < result.seconds["frozen"], (
            f"{result.label}: adaptive "
            f"{result.seconds['adaptive'] * 1e3:.1f}ms not faster than "
            f"frozen {result.seconds['frozen'] * 1e3:.1f}ms"
        )


@pytest.mark.bench
def test_adaptive_recompile_speedup(benchmark):
    results, _ = run()
    _assert_speedup(results)

    def evaluate():
        engine = _engine("base", True)
        return api.eval_all(_build(), engine=engine)

    benchmark.pedantic(evaluate, rounds=1, iterations=1, warmup_rounds=0)


def main() -> None:
    results, summaries = run()
    print_table("Adaptive recompilation vs estimate-frozen plans",
                ["frozen", "adaptive"], results)
    for label, summary in summaries.items():
        print(f"  {label}: {summary}")
    _assert_speedup(results)
    for result in results:
        speedup = result.seconds["frozen"] / max(result.seconds["adaptive"],
                                                 1e-12)
        print(f"  {result.label}: {speedup:.2f}x from recompilation")
    maybe_export_json("bench_recompile_adaptive", results,
                      extra={"adaptive": summaries})


if __name__ == "__main__":
    main()
