"""Executor microbenchmark: parallel task-graph scheduling vs serial.

A multi-root ``eval_all`` with independent per-root chains is exactly
the shape the dependency-readiness scheduler exploits: every branch is
a separate connected component of the lowered Program, so the thread
pool overlaps their NumPy kernels (which release the GIL).

On a multicore host the parallel executor must beat the serial
fallback wall-clock; on a single-core host (where threads cannot
overlap compute) the benchmark still reports both timings and the
scheduling stats, and the speedup assertion is skipped.

Run directly (writes JSON when ``REPRO_BENCH_JSON`` is set)::

    PYTHONPATH=src python benchmarks/bench_executor_parallel.py

or via pytest: ``pytest benchmarks/bench_executor_parallel.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro import api
from repro.bench.harness import (
    BenchResult,
    maybe_export_json,
    print_table,
    time_best,
)
from repro.compiler.execution import Engine
from repro.config import CodegenConfig

N_BRANCHES = 4
SIZE = 700
_CACHE: dict = {}


def _inputs():
    if "mats" not in _CACHE:
        rng = np.random.default_rng(11)
        _CACHE["mats"] = [
            rng.random((SIZE, SIZE)) for _ in range(N_BRANCHES)
        ]
    return _CACHE["mats"]


def _build_branches():
    """Independent compute-heavy branches (ufuncs release the GIL)."""
    exprs = []
    for idx, arr in enumerate(_inputs()):
        m = api.matrix(arr, f"M{idx}")
        e = api.exp(m * 0.5) + api.log(m + 1.5)
        e = api.sqrt(e * e + 1.0)
        exprs.append((e * m).sum())
    return exprs


def _engine(executor_mode: str) -> Engine:
    # Pin the pool to >= 2 workers so the parallel row exercises the
    # dependency scheduler even on single-core hosts (where the
    # executor's auto-sizing would otherwise fall back to serial).
    threads = max(2, os.cpu_count() or 1) if executor_mode == "parallel" else 0
    config = CodegenConfig(executor_mode=executor_mode,
                           executor_threads=threads)
    return Engine(mode="base", config=config)


def run(repeats: int = 3) -> list[BenchResult]:
    result = BenchResult(label=f"{N_BRANCHES}x independent chains")
    for executor_mode in ("serial", "parallel"):
        engine = _engine(executor_mode)

        def evaluate():
            return api.eval_all(_build_branches(), engine=engine)

        evaluate()  # warmup
        result.seconds[executor_mode] = time_best(evaluate, repeats)
        result.stats[executor_mode] = engine.stats.scheduling_summary()
    return [result]


@pytest.mark.bench
def test_parallel_executor_beats_serial(benchmark):
    results = run()
    stats = results[0].stats

    def evaluate():
        engine = _engine("parallel")
        return api.eval_all(_build_branches(), engine=engine)

    benchmark.pedantic(evaluate, rounds=1, iterations=1, warmup_rounds=1)
    assert stats["parallel"]["n_parallel_runs"] >= 1
    assert stats["parallel"]["executor_max_concurrency"] >= 2
    if (os.cpu_count() or 1) >= 2:
        # Threads can only overlap compute on a multicore host.  Retry
        # a few times so a transiently loaded machine doesn't flake the
        # comparison; each attempt is already best-of-3.
        seconds = results[0].seconds
        for _ in range(2):
            if seconds["parallel"] < seconds["serial"]:
                break
            seconds = run()[0].seconds
        assert seconds["parallel"] < seconds["serial"]


def main() -> None:
    results = run()
    print_table(
        "Executor: parallel task graph vs serial",
        ["serial", "parallel"],
        results,
    )
    seconds = results[0].seconds
    speedup = seconds["serial"] / max(seconds["parallel"], 1e-12)
    print(f"\nspeedup (serial/parallel): {speedup:.2f}x "
          f"on {os.cpu_count()} cpu(s)")
    for mode, stats in results[0].stats.items():
        print(f"  {mode:<9} {stats}")
    path = maybe_export_json(
        "executor_parallel", results, extra={"cpus": os.cpu_count()}
    )
    if path:
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
