"""Table 3: End-to-end compilation overhead per algorithm.

Runs all six algorithms on a small Mnist60k-like dataset (as in the
paper: overhead is most visible at small data sizes) and reports the
codegen statistics: number of optimized DAGs, constructed CPlans,
compiled operator classes, and the total code generation / class
compilation time.  The paper's claim: overhead below one second per
algorithm despite thousands of DAGs/CPlans.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    als_cg,
    autoencoder,
    glm_binomial_probit,
    kmeans,
    l2svm,
    mlogreg,
)
from repro.compiler.execution import Engine
from repro.data import generators

_CACHE: dict = {}


def _datasets():
    if not _CACHE:
        _CACHE["mnist"] = generators.mnist_like(rows=6000, seed=31)
        x, y = generators.classification_data(6000, 78, n_classes=2, seed=32)
        _CACHE["x"], _CACHE["y"] = x, y
        xm, labels = generators.classification_data(6000, 78, n_classes=5, seed=33)
        _CACHE["xm"], _CACHE["labels"] = xm, labels
        _CACHE["y01"] = (y.to_dense() + 1) / 2
        _CACHE["fact"] = generators.factorization_data(800, 600, rank=4,
                                                       sparsity=0.02, seed=34)
    return _CACHE


ALGORITHMS = {
    "L2SVM": lambda d, e: l2svm(d["x"], d["y"], engine=e, max_iter=10),
    "MLogreg": lambda d, e: mlogreg(d["xm"], d["labels"], 5, engine=e,
                                    max_iter=5, max_inner=5),
    "GLM": lambda d, e: glm_binomial_probit(d["x"], d["y01"], engine=e,
                                            max_iter=5, max_inner=5),
    "KMeans": lambda d, e: kmeans(d["x"], n_centroids=5, engine=e, max_iter=10),
    "ALS-CG": lambda d, e: als_cg(d["fact"], rank=4, engine=e, max_iter=3),
    "AutoEncoder": lambda d, e: autoencoder(
        d["mnist"], h1=50, h2=2, engine=e, batch_size=512, n_epochs=1
    ),
}


@pytest.mark.bench
@pytest.mark.parametrize("name", list(ALGORITHMS))
def test_table3_codegen_overhead(benchmark, name):
    data = _datasets()
    holder = {}

    def run():
        engine = Engine(mode="gen")
        ALGORITHMS[name](data, engine)
        holder["stats"] = engine.stats
        return engine

    benchmark.pedantic(run, rounds=1, iterations=1)
    stats = holder["stats"]
    benchmark.extra_info.update(
        {
            "n_dags": stats.n_dags_optimized,
            "n_cplans": stats.n_cplans_constructed,
            "n_classes": stats.n_classes_compiled,
            "codegen_ms": round(stats.codegen_seconds * 1e3, 1),
            "class_compile_ms": round(stats.class_compile_seconds * 1e3, 1),
            "cache_hits": stats.plan_cache_hits,
            "cache_lookups": stats.plan_cache_lookups,
        }
    )
    # Paper claim: total codegen overhead below ~1s per algorithm run.
    assert stats.codegen_seconds < 5.0
    assert stats.n_dags_optimized >= 3
    assert stats.plan_cache_hits > 0  # recompilation reuses operators
