"""Shared benchmark fixtures.

Run with ``pytest benchmarks/ --benchmark-only``.  Each benchmark test
measures one (workload, engine) cell of a paper table/figure; the
pytest-benchmark report provides the cross-engine comparison that the
paper plots.  Workload sizes are scaled down from the paper's cluster
scale by factors recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

#: Quick mode (``REPRO_BENCH_QUICK=1``): benchmarks trim their size /
#: parameter grids to a single small configuration, so a CI smoke run
#: finishes in seconds while exercising the full engine stack.
QUICK = os.environ.get("REPRO_BENCH_QUICK", "") == "1"


def quick_trim(values: list) -> list:
    """First element only in quick mode; the full grid otherwise."""
    return values[:1] if QUICK else values


def pytest_configure(config):
    config.addinivalue_line("markers", "bench: benchmark reproduction tests")


@pytest.fixture
def bench_once(benchmark):
    """Benchmark a callable exactly once per round (end-to-end runs)."""

    def run(func, warmup_func=None, rounds: int = 1):
        if warmup_func is not None:
            warmup_func()
        return benchmark.pedantic(func, rounds=rounds, iterations=1,
                                  warmup_rounds=0)

    return run


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(42)
