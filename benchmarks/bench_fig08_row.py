"""Figure 8(e,f,g): Row operations — t(X)(Xv) and t(X)(XV).

t(X) %*% (X %*% v) requires a single pass over X with fused operators
(temporal row locality); the hand-coded mmchain operator of Fused only
applies to matrix-*vector* chains, so for V with 2 columns (Fig 8(g))
Base and Fused coincide while Gen keeps its single-pass advantage.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import quick_trim

from repro import api
from repro.bench.harness import (
    BenchResult,
    maybe_export_json,
    print_table,
    time_best,
)
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock

MODES = ["numpy", "base", "fused", "gen"]
SIZES = quick_trim([100_000, 1_000_000, 4_000_000])
_CACHE: dict = {}


def _x(cells: int, sparse: bool) -> MatrixBlock:
    key = (cells, sparse)
    if key not in _CACHE:
        rows = cells // 1000
        if sparse:
            _CACHE[key] = MatrixBlock.rand(rows, 1000, sparsity=0.1, seed=7,
                                           low=0.1, high=1.0)
        else:
            _CACHE[key] = MatrixBlock.rand(rows, 1000, seed=7)
    return _CACHE[key]


def _v(cols: int) -> MatrixBlock:
    key = ("v", cols)
    if key not in _CACHE:
        _CACHE[key] = MatrixBlock.rand(1000, cols, seed=8)
    return _CACHE[key]


def _build(x_block, v_block):
    x = api.matrix(x_block, "X")
    v = api.matrix(v_block, "v")
    return [x.T @ (x @ v)]


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08e_mv_chain_dense(benchmark, cells, mode):
    x_block, v_block = _x(cells, False), _v(1)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(x_block, v_block), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08f_mv_chain_sparse(benchmark, cells, mode):
    x_block, v_block = _x(cells, True), _v(1)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(x_block, v_block), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells


@pytest.mark.bench
@pytest.mark.parametrize("cells", SIZES)
@pytest.mark.parametrize("mode", MODES)
def test_fig08g_mm_chain_dense(benchmark, cells, mode):
    """V has 2 columns: the hand-coded mmchain does NOT apply."""
    x_block, v_block = _x(cells, False), _v(2)
    engine = Engine(mode=mode)

    def evaluate():
        return api.eval_all(_build(x_block, v_block), engine=engine)

    evaluate()
    benchmark.pedantic(evaluate, rounds=3, iterations=1)
    benchmark.extra_info["cells"] = cells


def _time_row_tiers(x_block, v_block, rtol: float):
    """Time interpreted vs compiled tiers for the fused row operator."""
    seconds, summaries, values = {}, {}, {}
    for tier, vectorized in (("interpreted", False), ("compiled", True)):
        config = CodegenConfig(vectorized_kernels=vectorized)
        engine = Engine(mode="gen", config=config)

        def evaluate():
            return api.eval_all(_build(x_block, v_block), engine=engine)

        values[tier] = evaluate()[0].to_dense()  # warmup: codegen + kernels
        seconds[tier] = time_best(evaluate, 3)
        summaries[tier] = engine.stats.kernel_summary()
    np.testing.assert_allclose(values["compiled"], values["interpreted"],
                               rtol=rtol)
    return seconds, summaries


@pytest.mark.bench
def test_fig08_row_tier_speedup(benchmark):
    """Compiled row kernels vs interpreted tile loops, dense and sparse.

    Dense t(X)(Xv) is BLAS-bound, so whole-block compilation mostly
    removes per-tile dispatch (measured ~1.1-2.3x; report-only).  On
    sparse X the CSR-main-safe kernel runs the matmul chain directly on
    the CSR block without per-tile densification — measured ~2.4x at 1M
    cells and ~5.7x at 4M — so a conservative 1.5x floor is asserted at
    sizes >= 1M (the 100K quick size is dominated by fixed dispatch
    cost and only reported).
    """
    rtol = CodegenConfig().kernel_compare_rtol

    def run():
        results = []
        speedups = {}
        for cells in SIZES:
            for sparse in (False, True):
                label = f"row_{'sparse' if sparse else 'dense'}_{cells}"
                seconds, summaries = _time_row_tiers(
                    _x(cells, sparse), _v(1), rtol
                )
                results.append(BenchResult(label, seconds=seconds,
                                           stats=summaries))
                speedups[label] = results[-1].speedup("interpreted",
                                                      "compiled")
                if sparse and cells >= 1_000_000:
                    assert speedups[label] > 1.5, (
                        f"sparse row kernel slower than expected at "
                        f"{cells} cells: {speedups[label]:.2f}x"
                    )
        print_table("Fig 8 row: kernel tiers",
                    ["interpreted", "compiled"], results)
        print("speedups:", {k: f"{v:.2f}x" for k, v in speedups.items()})
        maybe_export_json("fig08_row_tiers", results,
                          extra={"speedup_compiled": speedups})

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
def test_fig08g_fused_equals_base_for_mm_chain(benchmark):
    """The paper's limitation check: mmchain is vector-only, so Fused
    must *not* produce a fused operator for t(X)(XV)."""

    def run():
        x_block, v_block = _x(100_000, False), _v(2)
        engine = Engine(mode="fused")
        api.eval_all(_build(x_block, v_block), engine=engine)
        assert engine.stats.spoof_executions.get("Fused", 0) == 0

        engine_v = Engine(mode="fused")
        api.eval_all(_build(x_block, _v(1)), engine=engine_v)
        assert engine_v.stats.spoof_executions.get("Fused", 0) == 1

    benchmark.pedantic(run, rounds=1, iterations=1)
