"""Table 5: Runtime of compute-intensive algorithms.

ALS-CG on sparse synthetic (0.01) plus Netflix/Amazon-like stand-ins,
and AutoEncoder on dense data.  Expected shape: for ALS-CG, Fused and
Gen improve by orders of magnitude through sparsity exploitation in the
update rules and loss — Base (and the heuristics, which destroy the
Outer template) must materialize the dense U V^T and become infeasible
at scale (the paper's N/A entries); we demonstrate that with a
size-guarded Base measurement at the smallest scale only.  For
AutoEncoder, fusion buys a solid but bounded factor (mini-batches).
"""

from __future__ import annotations

import pytest

from repro.algorithms import als_cg, autoencoder
from repro.compiler.execution import Engine
from repro.data import generators

_CACHE: dict = {}


def _dataset(name: str):
    if name in _CACHE:
        return _CACHE[name]
    if name == "sparse-1k":
        block = generators.factorization_data(1000, 1000, rank=8,
                                              sparsity=0.01, seed=81)
    elif name == "sparse-4k":
        block = generators.factorization_data(4000, 4000, rank=8,
                                              sparsity=0.01, seed=82)
    elif name == "netflix":
        block = generators.netflix_like(rows=20_000, cols=1500, seed=83)
    elif name == "amazon":
        block = generators.amazon_like(rows=30_000, cols=10_000, seed=84)
    else:  # dense autoencoder input
        block = generators.rand_dense(8_000, 100, seed=85)
    _CACHE[name] = block
    return block


@pytest.mark.bench
@pytest.mark.parametrize("dataset", ["sparse-1k", "sparse-4k", "netflix", "amazon"])
@pytest.mark.parametrize("mode", ["fused", "gen"])
def test_table5_als_cg(benchmark, dataset, mode):
    block = _dataset(dataset)
    engine = Engine(mode=mode)

    def run():
        return als_cg(block, rank=8, engine=engine, max_iter=2, max_inner=4)

    benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["nnz"] = block.nnz


@pytest.mark.bench
@pytest.mark.parametrize("mode", ["base", "gen-fa", "gen-fnr"])
def test_table5_als_cg_small_baselines(benchmark, mode):
    """Base and the heuristics only at the smallest scale — they
    materialize dense U V^T intermediates (the paper's N/A regime)."""
    block = _dataset("sparse-1k")
    engine = Engine(mode=mode)

    def run():
        return als_cg(block, rank=8, engine=engine, max_iter=2, max_inner=4)

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
def test_table5_als_sparsity_exploitation_gap(benchmark):
    """Gen must beat Base by a large factor already at 1k x 1k."""
    from repro.bench.harness import time_once

    def run():
        block = _dataset("sparse-1k")
        base_s = time_once(
            lambda: als_cg(block, rank=8, engine=Engine(mode="base"),
                           max_iter=1, max_inner=3)
        )
        engine = Engine(mode="gen")
        als_cg(block, rank=8, engine=engine, max_iter=1, max_inner=3)
        gen_s = time_once(
            lambda: als_cg(block, rank=8, engine=engine, max_iter=1, max_inner=3)
        )
        # ~2.4x at this (small) scale; the gap grows with matrix size
        # as Base's dense U V^T intermediates dominate (Table 5 N/A).
        assert gen_s < base_s
        benchmark.extra_info["base_s"] = round(base_s, 3)
        benchmark.extra_info["gen_s"] = round(gen_s, 3)

    benchmark.pedantic(run, rounds=1, iterations=1)


@pytest.mark.bench
@pytest.mark.parametrize("mode", ["base", "fused", "gen", "gen-fa", "gen-fnr"])
def test_table5_autoencoder(benchmark, mode):
    block = _dataset("dense-ae")
    engine = Engine(mode=mode)

    def run():
        return autoencoder(block, h1=50, h2=2, engine=engine,
                           batch_size=512, n_epochs=1)

    benchmark.pedantic(run, rounds=1, iterations=1)
