"""Recommender-system example: ALS-CG on a Netflix-like rating matrix.

Demonstrates the sparsity-exploiting Outer template on the paper's
Expression (1): with basic operators the update rules would materialize
the dense U V^T; the codegen optimizer compiles fused outer-product
operators instead, keeping every iteration proportional to the number
of observed ratings.

Run:  python examples/als_recommender.py
"""

import time

import numpy as np

from repro.algorithms import als_cg
from repro.compiler.execution import Engine
from repro.data import generators


def main():
    ratings = generators.netflix_like(rows=8000, cols=800, seed=11)
    print(
        f"rating matrix: {ratings.rows} users x {ratings.cols} items, "
        f"{ratings.nnz} ratings (density {ratings.sparsity:.4f})"
    )

    engine = Engine(mode="gen")
    start = time.perf_counter()
    result = als_cg(ratings, rank=12, engine=engine, max_iter=5, seed=1)
    elapsed = time.perf_counter() - start

    print(f"trained rank-12 factorization in {elapsed:.2f}s "
          f"({result.n_outer_iterations} outer iterations)")
    print("loss trajectory:", [f"{l:.1f}" for l in result.losses])
    print("fused operators executed:", dict(engine.stats.spoof_executions))

    # Recommend: top items for one user from the factor model.
    u = result.model["U"].to_dense()
    v = result.model["V"].to_dense()
    user = 42
    scores = v @ u[user]
    seen = set(ratings.to_csr()[user].indices)
    top = [i for i in np.argsort(-scores) if i not in seen][:5]
    print(f"top-5 unseen items for user {user}: {top}")

    outer_runs = engine.stats.spoof_executions.get("Outer", 0)
    assert outer_runs > 0, "expected sparsity-exploiting Outer operators"


if __name__ == "__main__":
    main()
