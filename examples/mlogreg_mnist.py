"""Classification example: multinomial logistic regression, DML script.

Shows both front ends on an MNIST-like sparse dataset:

1. the Python algorithm implementation (:mod:`repro.algorithms`), and
2. the R-like scripting language, whose inner expression is exactly the
   paper's Figure 5 / Expression (2) fusion pattern.

Run:  python examples/mlogreg_mnist.py
"""

import numpy as np

from repro.algorithms import mlogreg
from repro.compiler.execution import Engine
from repro.data import generators
from repro.lang import run_script


def python_front_end():
    x, labels = generators.classification_data(5000, 50, n_classes=4, seed=5)
    engine = Engine(mode="gen")
    result = mlogreg(x, labels, n_classes=4, engine=engine, max_iter=6)

    beta = result.model["beta"].to_dense()
    scores = np.hstack([x.to_dense() @ beta, np.zeros((x.rows, 1))])
    accuracy = np.mean(np.argmax(scores, axis=1) + 1 == labels.to_dense().ravel())
    print(f"[python] loss {result.losses[0]:.1f} -> {result.losses[-1]:.1f}, "
          f"training accuracy {accuracy:.3f}")
    print(f"[python] fused operators: {dict(engine.stats.spoof_executions)}")


def script_front_end():
    """One Newton-CG Hessian-vector product as a DML-subset script."""
    rng = np.random.default_rng(8)
    script = """
    k = ncol(V)
    Q = P[, 1:k] * (X %*% V)
    HV = t(X) %*% (Q - P[, 1:k] * rowSums(Q))
    check = sum(HV)
    """
    engine = Engine(mode="gen")
    out = run_script(
        script,
        inputs={
            "X": rng.random((2000, 30)),
            "V": rng.random((30, 3)),
            "P": rng.random((2000, 4)),
        },
        engine=engine,
    )
    print(f"[script] HV shape {out['HV'].shape}, sum {out['check']:.4f}")
    print(f"[script] fused operators: {dict(engine.stats.spoof_executions)}")
    assert engine.stats.spoof_executions.get("Row", 0) >= 1


if __name__ == "__main__":
    python_front_end()
    script_front_end()
