"""Distributed example: KMeans on the simulated Spark backend.

Configures a simulated 6-worker cluster with a scaled-down driver
memory budget so the feature matrix exceeds it — every operator
touching X is selected for distributed execution, side inputs are
broadcast (and charged), and the engine reports simulated network time
alongside wall-clock compute.  Compares the cost-based optimizer with
the fuse-all heuristic: fuse-all drags driver-side vector operations
into distributed operators and pays broadcast overhead (the paper's
Table 6 effect).

Run:  python examples/distributed_kmeans.py
"""

import time

from repro.algorithms import kmeans
from repro.compiler.execution import Engine
from repro.config import ClusterConfig, CodegenConfig
from repro.data import generators


def run(mode: str, data):
    config = CodegenConfig(
        cluster=ClusterConfig(n_workers=6, executor_mem=10e6),
        local_mem_budget=8e6,  # scaled-down driver budget
    )
    engine = Engine(mode=mode, config=config)
    start = time.perf_counter()
    result = kmeans(data, n_centroids=5, engine=engine, max_iter=5, seed=2)
    wall = time.perf_counter() - start
    stats = engine.stats
    print(
        f"{mode:8}  wall {wall:6.2f}s   simulated net/IO {stats.sim_seconds:7.4f}s"
        f"   broadcast {stats.sim_broadcast_bytes/1e6:7.1f} MB"
        f"   distributed ops {stats.n_distributed_ops:3d}"
        f"   wcss {result.losses[-1]:.1f}"
    )
    return stats


def main():
    data = generators.clustering_data(200_000, 10, n_centers=5, seed=1)
    print(f"data: {data.rows} x {data.cols} "
          f"({data.size_bytes/1e6:.0f} MB; driver budget 8 MB -> distributed)")
    gen = run("gen", data)
    fa = run("gen-fa", data)
    run("base", data)
    print(
        "\nfuse-all broadcasts "
        f"{fa.sim_broadcast_bytes / max(gen.sim_broadcast_bytes, 1):.1f}x "
        "more than the cost-based optimizer."
    )


if __name__ == "__main__":
    main()
