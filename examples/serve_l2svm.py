"""Serving an L2SVM model: prepare -> specialize -> schedule.

Walkthrough of the serving subsystem (``repro.serve``) end to end:

1. **train** an L2SVM on synthetic data (normal engine path),
2. **prepare** the scoring script once — nothing compiles yet,
3. first request **specializes** the plan for its input shapes (the
   full rewrite -> codegen -> lowering pipeline runs exactly once),
4. repeated requests are **warm**: binding is a cache lookup and the
   compile pipeline is skipped entirely,
5. a different batch size triggers **dynamic recompilation** into a
   second specialization instead of failing,
6. a ``SessionScheduler`` serves concurrent clients over one shared
   engine, micro-batching stackable requests and reporting telemetry.

Run with::

    PYTHONPATH=src python examples/serve_l2svm.py
"""

import threading

import numpy as np

from repro.algorithms import l2svm
from repro.compiler.execution import Engine
from repro.data import generators
from repro.serve import SessionScheduler

SCORING_SCRIPT = """
input X, w
margin = X %*% w
label = 2 * (margin > 0) - 1
"""


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Train (the usual iterative path; its own engine).
    x_train, y_train = generators.classification_data(2000, 40, seed=7)
    fit = l2svm(x_train, y_train, max_iter=8)
    weights = fit.model["w"].to_dense()
    print(f"trained L2SVM: {fit.n_outer_iterations} outer iterations")

    # 2. Prepare the scoring script against a serving engine.
    engine = Engine(mode="gen")
    scorer = engine.prepare_script(
        SCORING_SCRIPT, name="l2svm_score", batch_inputs=("X",)
    )
    print(f"prepared: {scorer!r}")

    # 3. First request compiles one shape specialization.
    batch = rng.random((64, 40))
    out = scorer.run({"X": batch, "w": weights})
    print(f"cold request: {scorer.n_specializations} specialization(s), "
          f"programs compiled = {engine.stats.n_programs_compiled}")

    # 4. Same shapes again: the compile pipeline is skipped.
    compiled_before = engine.stats.n_programs_compiled
    scorer.run({"X": rng.random((64, 40)), "w": weights})
    assert engine.stats.n_programs_compiled == compiled_before
    print(f"warm request: specialization hit "
          f"(hits={engine.stats.n_specialization_hits}, compile skipped)")

    # 5. A new batch size recompiles instead of failing.
    scorer.run({"X": rng.random((17, 40)), "w": weights})
    print(f"shape change: {scorer.n_specializations} specializations, "
          f"recompiles = {engine.stats.n_shape_recompiles}")

    # 6. Concurrent clients through the scheduler (micro-batching on X).
    client_batches = [rng.random((32, 40)) for _ in range(16)]
    outputs = {}
    with SessionScheduler(engine, n_workers=4, max_batch=4) as server:
        def client(index):
            ticket = server.submit(
                scorer, {"X": client_batches[index], "w": weights}
            )
            outputs[index] = ticket.result(60)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(client_batches))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        summary = server.serving_summary()

    for index, batch_x in enumerate(client_batches):
        expected = np.sign(batch_x @ weights)
        served = outputs[index]["label"].to_dense()
        assert np.array_equal(served, expected), f"client {index} diverged"
    print("all concurrent clients got results identical to direct scoring")
    print("serving summary:")
    for key, value in summary.items():
        print(f"  {key:<28} {value}")
    engine.close()


if __name__ == "__main__":
    main()
