"""Compressed execution: footprint ratio and dictionary-direct speedup.

An Airline78-like block (dense storage, low-cardinality columns — the
paper's Figure 9 dataset shape) is compressed into CLA column groups.
The same sum-aggregated sparse-safe pipeline is then evaluated two
ways: dictionary-direct over the compressed block (the fused operator
touches only each group's distinct values, weighted by counts) and
decompress-then-execute.  The direct path reports zero decompressions
and wins by roughly the compression ratio; both agree bit-for-bit with
the dense oracle because the data is integer-valued.

Run:  PYTHONPATH=src python examples/compressed_format.py
"""

import time

from repro import api
from repro.compiler.execution import Engine
from repro.data import generators
from repro.runtime.compressed import compress, estimate_distinct
from repro.runtime.matrix import recommend_format


def build(value):
    x = api.matrix(value, name="X")
    return ((x * 2.0) * (x * 2.0)).sum()  # sum((2X)^2), sparse-safe


def best_of(func, repeats=3):
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        times.append(time.perf_counter() - start)
    return min(times), result


def main():
    block = generators.airline_like(rows=120_000, seed=5)
    distinct = estimate_distinct(block)
    fmt = recommend_format(block.rows, block.cols, block.nnz,
                           distinct=distinct)
    print(f"input: {block.rows}x{block.cols} dense, "
          f"~{distinct:.0f} distinct values/column")
    print(f"recommend_format(..., distinct={distinct:.0f}) -> {fmt!r}\n")

    comp = compress(block)
    print(f"compressed: {comp!r}")
    print(f"footprint: {block.size_bytes / 2**20:.1f} MiB dense -> "
          f"{comp.size_bytes / 2**20:.1f} MiB "
          f"({comp.compression_ratio:.1f}x smaller)\n")

    engine = Engine(mode="gen")
    direct_time, direct = best_of(
        lambda: api.eval(build(comp), engine=engine))
    summary = engine.stats.compressed_summary()
    indirect_time, indirect = best_of(
        lambda: api.eval(build(comp.decompress()), engine=Engine(mode="gen")))
    oracle = api.eval(build(block), engine=Engine(mode="base"))

    print(f"dictionary-direct:       {direct_time * 1e3:8.1f} ms  "
          f"(n_compressed_ops={summary['n_compressed_ops']}, "
          f"n_decompressions={summary['n_decompressions']})")
    print(f"decompress-then-execute: {indirect_time * 1e3:8.1f} ms")
    print(f"speedup: {indirect_time / direct_time:.1f}x")
    print(f"bit-parity vs dense oracle: "
          f"{direct == oracle and indirect == oracle}")


if __name__ == "__main__":
    main()
