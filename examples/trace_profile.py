"""Tracing and profiling a run that triggers an adaptive recompile.

The workload compiles a scoring chain over a dense-stored matrix whose
sparsity is hidden from the compiler (``nnz_unknown=True``).  With
``trace_level="full"`` the engine records every phase — the compiler
passes, per-instruction execution with tier/format/bytes annotations,
generated-operator bodies, kernel compiles, and the mid-run
``recompile-splice`` where the executor observes the real non-zero
count and re-enters the pipeline.

The script exports the span buffer as Chrome ``trace_event`` JSON
(open the exported file at https://ui.perfetto.dev — each thread is a
flame lane, and the recompile splice nests inside its request) and
prints the per-operator profile table.  The trace is written under a
temporary directory unless ``--out`` names a destination.

Run:  PYTHONPATH=src python examples/trace_profile.py [--out PATH]
"""

import argparse
import os
import tempfile

import numpy as np

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock


def _trace_path() -> str:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=os.path.join(tempfile.mkdtemp(prefix="repro_trace_"),
                             "trace_profile.json"),
        help="destination for the Chrome trace JSON "
             "(default: a fresh temp directory)",
    )
    return parser.parse_args().out


def main():
    trace_path = _trace_path()
    rng = np.random.default_rng(42)
    rows, cols, density = 2_000, 1_500, 0.01
    arr = np.zeros((rows, cols))
    mask = rng.random((rows, cols)) < density
    arr[mask] = rng.random(int(mask.sum())) + 0.5
    block = MatrixBlock(arr)  # dense-stored, 1% non-zero

    engine = Engine("gen", CodegenConfig(trace_level="full",
                                         adaptive_recompile=True))
    x = api.matrix(block, name="X", nnz_unknown=True)
    api.eval((x * 3.0) * api.abs_(x) * 0.5, engine=engine)

    print(f"recompiles triggered : {engine.stats.n_recompiles}")
    print(f"spans recorded       : {len(engine.tracer.events())}")
    path = engine.export_trace(trace_path)
    print(f"trace exported       : {path} "
          "(open at https://ui.perfetto.dev)\n")

    splice = [s for s in engine.tracer.events()
              if s.name == "recompile-splice"]
    if splice:
        print(f"recompile-splice     : {splice[0].duration * 1e3:.2f} ms "
              f"at instruction {splice[0].args.get('at_instruction')} "
              f"({splice[0].args.get('op')})\n")

    print(engine.profile_report())
    engine.close()


if __name__ == "__main__":
    main()
