"""Static verification walkthrough: an L2SVM compile under the verifier.

The analysis layer (``repro.analysis``) checks what the test suite only
samples — IR invariants at pipeline boundaries, the generated-kernel
contract, and the runtime's locking conventions.  This example:

1. builds the L2SVM inner-iteration DAG and verifies it pre-compile,
2. compiles it under ``verify_level="full"`` (every pass boundary
   re-verified, every generated kernel linted before ``exec``),
3. dumps the verification report of the lowered program,
4. seeds two mutants — a corrupted refcount and corrupted dims — and
   shows the pointed diagnostics the verifier produces,
5. runs the kernel lint on a deliberately hostile source.

Run with::

    PYTHONPATH=src python examples/verify_program.py
"""

import numpy as np

from repro import api
from repro.analysis.kernel_lint import lint_source
from repro.analysis.verify import format_report, verify_dag, verify_program
from repro.compiler.execution import Engine
from repro.config import CodegenConfig


def l2svm_iteration_roots(rng):
    """The hinge-loss core of one L2SVM outer iteration.

    out  = max(1 - y * (X w), 0)        element-wise hinge
    loss = sum(out^2) + (lambda/2) w'w
    grad = lambda w - X' (y * 2 out)
    """
    x = api.matrix(rng.random((200, 30)), "X")
    y = api.matrix(np.sign(rng.random((200, 1)) - 0.5), "y")
    w = api.matrix(rng.random((30, 1)), "w")
    lam = 0.01

    out = api.maximum(1.0 - y * (x @ w), 0.0)
    loss = (out * out).sum() + (w * w).sum() * (lam / 2.0)
    grad = w * lam - x.T @ (y * (out * 2.0))
    return [loss.hop, grad.hop]


def main() -> None:
    rng = np.random.default_rng(7)

    # 1. Pre-compile DAG verification (acyclicity, link symmetry, dims
    # per op semantics, exec-type legality, fused-operator coverage).
    roots = l2svm_iteration_roots(rng)
    print("== HOP DAG (pre-compile) ==")
    print(format_report(verify_dag(roots, stage="pre-compile")))

    # 2. Compile under full verification: the pipeline re-verifies the
    # DAG after every pass, the lowered program after lowering, and
    # lints every generated kernel source before exec().
    engine = Engine(mode="gen", config=CodegenConfig(verify_level="full"))
    program = engine.compile(l2svm_iteration_roots(rng))
    print(f"\ncompiled: {program.n_instructions} instructions over "
          f"{program.n_slots} slots, "
          f"{engine.plan_cache.size} generated operator(s)")

    # 3. The lowered program's own report (slot discipline, refcounts,
    # static use-after-free, dependency edges, recompile markers).
    print("\n== lowered program ==")
    print(format_report(verify_program(program, stage="post-lowering")))
    print("\nanalysis counters:", engine.stats.analysis_summary())

    # 4a. Mutant: overstate a refcount — the executor would leak the
    # slot; the diagnostic names the producing instruction.
    slot = program.instructions[0].output_slot
    program.consumer_counts[slot] += 1
    print("\n== mutant: corrupted refcount ==")
    print(format_report(verify_program(program, stage="mutant")))
    program.consumer_counts[slot] -= 1

    # 4b. Mutant: corrupt a hop's dims mid-DAG — as a bad rewrite
    # would; the diagnostic names the hop whose semantics disagree.
    roots = l2svm_iteration_roots(rng)
    victim = roots[1].inputs[0]
    victim.rows = 999
    print("\n== mutant: corrupted dims ==")
    print(format_report(verify_dag(roots, stage="mutant")))

    # 5. The kernel lint on a hostile "generated" source: every rule
    # class fires (imports, I/O builtins, nondeterminism, loops in a
    # vectorized-tier kernel).
    hostile = (
        "import os\n"
        "import numpy as np\n"
        "def genkernel(a, b, s):\n"
        "    open('/tmp/x', 'w')\n"
        "    acc = 0.0\n"
        "    for i in range(3):\n"
        "        acc = acc + np.random.rand()\n"
        "    return acc\n"
    )
    print("\n== kernel lint: hostile source ==")
    for finding in lint_source("HOSTILE", hostile, kind="vectorized"):
        print(f"  {finding}")

    engine.close()


if __name__ == "__main__":
    main()
