"""Tiered compiled kernels: interpreted skeletons vs vectorized kernels.

Every fused operator starts life as interpreted tile-loop code
(`genexec`).  The tiered runtime compiles a second, whole-block
vectorized variant (`genkernel`) once an operator is hot — here with
``kernel_hot_threshold=3`` so the promotion is visible mid-run — and
both tiers share the semantic-hash plan cache, so one compile serves
every matching operator regardless of input shape.

The script shows three things:

1. the promotion timeline (interpreted runs, then a compile, then
   compiled runs) via ``engine.stats.kernel_summary()``,
2. the speedup of the compiled tier on the paper's Fig 8 cell workload
   sum(X * Y * Z), which the kernel backend contracts into a single
   ``np.einsum`` call,
3. bit-for-bit / tolerance parity between the tiers.

Run:  python examples/compiled_kernels.py
"""

import time

import numpy as np

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock


def build(blocks):
    x, y, z = (api.matrix(b, n) for b, n in zip(blocks, "XYZ"))
    return [(x * y * z).sum()]


def time_eval(engine, blocks, repeats=5):
    best = float("inf")
    value = None
    for _ in range(repeats):
        start = time.perf_counter()
        value = api.eval_all(build(blocks), engine=engine)[0]
        best = min(best, time.perf_counter() - start)
    return best, float(value)


def main():
    blocks = tuple(MatrixBlock.rand(2000, 1000, seed=s) for s in (1, 2, 3))
    print("workload: sum(X * Y * Z), three dense 2000x1000 inputs\n")

    # --- Promotion timeline: operators start interpreted, get hot,
    # --- then promote to the compiled kernel tier.
    tiered = Engine(mode="gen",
                    config=CodegenConfig(kernel_hot_threshold=3))
    for step in range(1, 4):
        api.eval_all(build(blocks), engine=tiered)
        summary = tiered.stats.kernel_summary()
        tier = "compiled" if summary["n_compiled_runs"] else "interpreted"
        print(f"run {step}: tier={tier:<12} "
              f"interpreted={summary['n_interpreted_runs']} "
              f"compiled={summary['n_compiled_runs']} "
              f"promotions={summary['n_kernel_promotions']}")
    assert tiered.stats.kernel_summary()["n_kernel_promotions"] == 1

    # --- Tier comparison: same plan, interpreted vs always-compiled.
    interp = Engine(mode="gen",
                    config=CodegenConfig(vectorized_kernels=False))
    comp = Engine(mode="gen", config=CodegenConfig())  # threshold 0
    time_eval(interp, blocks, repeats=1)  # warmup: codegen + plan cache
    time_eval(comp, blocks, repeats=1)
    t_interp, v_interp = time_eval(interp, blocks)
    t_comp, v_comp = time_eval(comp, blocks)

    print(f"\ninterpreted tile loops : {t_interp * 1e3:8.2f} ms")
    print(f"compiled einsum kernel : {t_comp * 1e3:8.2f} ms")
    print(f"speedup                : {t_interp / t_comp:8.2f}x")

    rtol = comp.config.kernel_compare_rtol
    assert np.isclose(v_interp, v_comp, rtol=rtol), (v_interp, v_comp)
    print(f"results agree within rtol={rtol:g}: "
          f"{v_interp:.6f} vs {v_comp:.6f}")

    summary = comp.stats.kernel_summary()
    print(f"\ncompiled-tier stats: {summary}")


if __name__ == "__main__":
    main()
