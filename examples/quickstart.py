"""Quickstart: expressions, engines, and automatic operator fusion.

Builds the paper's four motivating expression patterns (Figure 1),
executes each under the Base interpreter and the cost-based codegen
optimizer (Gen), and prints which fused-operator templates were
generated plus the speedups.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import api
from repro.compiler.execution import Engine
from repro.runtime.matrix import MatrixBlock


def timed(engine, build):
    api.eval_all(build(), engine=engine)  # warmup (codegen + plan cache)
    start = time.perf_counter()
    results = api.eval_all(build(), engine=engine)
    return time.perf_counter() - start, results


def main():
    rng = np.random.default_rng(7)
    n, m, rank = 4000, 1000, 50

    x = MatrixBlock(rng.random((n, m)))
    y = MatrixBlock(rng.random((n, m)))
    z = MatrixBlock(rng.random((n, m)))
    v = MatrixBlock(rng.random((m, 1)))
    u_f = MatrixBlock(rng.random((n, rank)))
    v_f = MatrixBlock(rng.random((m, rank)))
    sparse_x = MatrixBlock.rand(n, m, sparsity=0.01, seed=3, low=0.1, high=1.0)

    patterns = {
        "intermediates: sum(X*Y*Z)": lambda: [
            (api.matrix(x, "X") * api.matrix(y, "Y") * api.matrix(z, "Z")).sum()
        ],
        "single pass:   t(X)(Xv)": lambda: [
            api.matrix(x, "X").T @ (api.matrix(x, "X") @ api.matrix(v, "v"))
        ],
        "multi-agg:     sum(X*Y), sum(X*Z)": lambda: [
            (api.matrix(x, "X") * api.matrix(y, "Y")).sum(),
            (api.matrix(x, "X") * api.matrix(z, "Z")).sum(),
        ],
        "sparse driver: sum(S*log(UV'+eps))": lambda: [
            (
                api.matrix(sparse_x, "S")
                * api.log(api.matrix(u_f, "U") @ api.matrix(v_f, "V").T + 1e-15)
            ).sum()
        ],
    }

    print(f"{'pattern':<38}{'base':>10}{'gen':>10}{'speedup':>9}  templates")
    for label, build in patterns.items():
        base_s, base_out = timed(Engine(mode="base"), build)
        gen_engine = Engine(mode="gen")
        gen_s, gen_out = timed(gen_engine, build)
        for a, b in zip(base_out, gen_out):
            av = a if isinstance(a, float) else a.to_dense()
            bv = b if isinstance(b, float) else b.to_dense()
            assert np.allclose(av, bv, rtol=1e-8), "engines disagree!"
        templates = ", ".join(
            f"{k}x{v}" for k, v in sorted(gen_engine.stats.spoof_executions.items())
        )
        print(
            f"{label:<38}{base_s*1e3:>8.1f}ms{gen_s*1e3:>8.1f}ms"
            f"{base_s/gen_s:>8.1f}x  {templates}"
        )


if __name__ == "__main__":
    main()
