"""Adaptive recompilation on a sparse workload with unknown metadata.

A scoring expression is compiled over an input matrix whose sparsity is
hidden from the compiler (``nnz_unknown=True`` — think of a freshly
ingested dataset whose statistics were never collected).  The frozen
plan assumes dense and pays dense costs on every cell; the adaptive
engine observes the real non-zero count at the first recompilation
segment boundary, recompiles the remainder against the observed
metadata, converts the block to CSR per the shared format policy, and
runs the rest of the program over non-zeros only.

Run:  PYTHONPATH=src python examples/sparse_adaptive.py
"""

import time

import numpy as np

from repro import api
from repro.compiler.execution import Engine
from repro.config import CodegenConfig
from repro.runtime.matrix import MatrixBlock


def build(block):
    x = api.matrix(block, name="X", nnz_unknown=True)
    return (x * 3.0) * api.abs_(x) * 0.5


def timed(engine, block):
    api.eval(build(block), engine=engine)  # warmup: compile + plan cache
    start = time.perf_counter()
    result = api.eval(build(block), engine=engine)
    return time.perf_counter() - start, result


def main():
    rng = np.random.default_rng(42)
    rows, cols, density = 4_000, 3_000, 0.01
    arr = np.zeros((rows, cols))
    mask = rng.random((rows, cols)) < density
    arr[mask] = rng.random(int(mask.sum())) + 0.5
    block = MatrixBlock(arr)  # dense-stored, 1% non-zero
    print(f"input: {rows}x{cols}, {density:.0%} dense, stored dense, "
          "nnz unknown at compile time\n")

    frozen_engine = Engine("gen", CodegenConfig(adaptive_recompile=False))
    adaptive_engine = Engine("gen", CodegenConfig(adaptive_recompile=True))

    frozen_time, frozen = timed(frozen_engine, block)
    adaptive_time, adapted = timed(adaptive_engine, block)

    print(f"estimate-frozen plan : {frozen_time * 1e3:8.1f} ms")
    print(f"adaptive recompile   : {adaptive_time * 1e3:8.1f} ms "
          f"({frozen_time / adaptive_time:.2f}x)")
    print(f"bit-identical        : "
          f"{np.array_equal(frozen.to_dense(), adapted.to_dense())}")
    print(f"\nadaptive counters    : {adaptive_engine.stats.adaptive_summary()}")


if __name__ == "__main__":
    main()
